//! The serving artifact: a fitted metamodel `f^am` bundled with the
//! training dataset `D` it was fitted on.
//!
//! `D` rides along because `discover` anchors its validation to the
//! *original* simulated labels (the paper's `D_val = D`, §8.5): PRIM's
//! stopping rule and best-box choice must not float on pseudo-labels.
//! Keeping the pair in one document makes a served `discover` fully
//! reproducible from the artifact file alone.

use std::fmt;
use std::path::Path;

use reds_data::Dataset;
use reds_json::Json;
use reds_metamodel::persist::{f64_from_json, f64_to_json};
use reds_metamodel::SavedModel;

/// Current artifact schema version; bumped on incompatible changes.
/// Version 2 added the pool-generation provenance (`pool_seed`,
/// `pool_design`); version-1 artifacts still load, with the training
/// seed standing in as the pool seed.
pub const ARTIFACT_SCHEMA_VERSION: usize = 2;

/// The only pool design servable right now: i.i.d. uniform on
/// `[0,1]^M` (Algorithm 4, line 3 under deep uncertainty).
pub const POOL_DESIGN_UNIFORM: &str = "uniform";

/// Document-type marker distinguishing artifacts from other REDS JSON.
pub const ARTIFACT_KIND: &str = "reds-model-artifact";

/// A fitted metamodel plus its training data, ready to serve.
pub struct ModelArtifact {
    /// Name of the benchmark function (or data source) `D` came from.
    pub function: String,
    /// Seed the training run used (provenance; not consumed when
    /// serving).
    pub seed: u64,
    /// Seed of the served pseudo-label pool: a `discover_streaming`
    /// request without an explicit seed streams exactly this pool, so
    /// a served run is reproducible from the artifact file alone.
    pub pool_seed: u64,
    /// Design of the served pool (currently always
    /// [`POOL_DESIGN_UNIFORM`]; recorded so future designs cannot be
    /// confused with old artifacts).
    pub pool_design: String,
    /// The fitted metamodel.
    pub model: SavedModel,
    /// The training dataset `D` — the validation anchor for `discover`.
    pub train: Dataset,
}

/// Why an artifact failed to load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(reds_json::ParseError),
    /// The document is valid JSON but not a valid artifact.
    Format(String),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read artifact: {e}"),
            Self::Parse(e) => write!(f, "artifact is not valid JSON: {e}"),
            Self::Format(m) => write!(f, "invalid artifact: {m}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

fn format_err(message: impl Into<String>) -> ArtifactError {
    ArtifactError::Format(message.into())
}

impl ModelArtifact {
    /// Serializes the artifact (model, training data, provenance).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("kind", Json::str(ARTIFACT_KIND)),
            ("schema_version", Json::num(ARTIFACT_SCHEMA_VERSION as f64)),
            ("function", Json::str(self.function.clone())),
            // u64 seeds exceed the exact-integer range of f64; a decimal
            // string survives losslessly.
            ("seed", Json::str(self.seed.to_string())),
            ("pool_seed", Json::str(self.pool_seed.to_string())),
            ("pool_design", Json::str(self.pool_design.clone())),
            ("family", Json::str(self.model.family())),
            ("m", Json::num(self.train.m() as f64)),
            ("model", self.model.to_json()),
            (
                "train",
                Json::obj([
                    (
                        "points",
                        Json::arr(self.train.points().iter().map(|&v| f64_to_json(v))),
                    ),
                    (
                        "labels",
                        Json::arr(self.train.labels().iter().map(|&v| f64_to_json(v))),
                    ),
                ]),
            ),
        ])
    }

    /// Decodes and validates an artifact document.
    pub fn from_json(doc: &Json) -> Result<Self, ArtifactError> {
        let str_field = |key: &str| -> Result<&str, ArtifactError> {
            doc.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format_err(format!("missing string field '{key}'")))
        };
        let kind = str_field("kind")?;
        if kind != ARTIFACT_KIND {
            return Err(format_err(format!(
                "document kind '{kind}' is not '{ARTIFACT_KIND}'"
            )));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| format_err("missing 'schema_version'"))?;
        if version != 1.0 && version != ARTIFACT_SCHEMA_VERSION as f64 {
            return Err(format_err(format!(
                "schema version {version} (this build reads 1 and {ARTIFACT_SCHEMA_VERSION})"
            )));
        }
        let function = str_field("function")?.to_string();
        let seed: u64 = str_field("seed")?
            .parse()
            .map_err(|_| format_err("'seed' must be a decimal u64 string"))?;
        // Version 1 predates pool provenance: fall back to the training
        // seed, which v1-era tooling reused for served pools.
        let (pool_seed, pool_design) = if version == 1.0 {
            (seed, POOL_DESIGN_UNIFORM.to_string())
        } else {
            let pool_seed = str_field("pool_seed")?
                .parse()
                .map_err(|_| format_err("'pool_seed' must be a decimal u64 string"))?;
            let pool_design = str_field("pool_design")?.to_string();
            if pool_design != POOL_DESIGN_UNIFORM {
                return Err(format_err(format!(
                    "unsupported pool design '{pool_design}' (this build serves '{POOL_DESIGN_UNIFORM}')"
                )));
            }
            (pool_seed, pool_design)
        };
        let m = doc
            .get("m")
            .and_then(Json::as_f64)
            .filter(|v| *v >= 1.0 && v.fract() == 0.0)
            .ok_or_else(|| format_err("'m' must be a positive integer"))? as usize;
        let model = SavedModel::from_json(
            doc.get("model")
                .ok_or_else(|| format_err("missing 'model'"))?,
        )
        .map_err(|e| format_err(e.to_string()))?;
        if model.m() != m {
            return Err(format_err(format!(
                "model expects {} input columns but the artifact declares m = {m}",
                model.m()
            )));
        }
        let family = str_field("family")?;
        if family != model.family() {
            return Err(format_err(format!(
                "artifact declares family '{family}' but the embedded model is '{}'",
                model.family()
            )));
        }
        let train_doc = doc
            .get("train")
            .ok_or_else(|| format_err("missing 'train'"))?;
        let floats = |key: &str| -> Result<Vec<f64>, ArtifactError> {
            train_doc
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format_err(format!("'train.{key}' must be an array")))?
                .iter()
                .map(|v| f64_from_json(v).map_err(|e| format_err(e.to_string())))
                .collect()
        };
        let points = floats("points")?;
        let labels = floats("labels")?;
        let train = Dataset::new(points, labels, m).map_err(|e| format_err(e.to_string()))?;
        if train.is_empty() {
            return Err(format_err("training data is empty"));
        }
        Ok(Self {
            function,
            seed,
            pool_seed,
            pool_design,
            model,
            train,
        })
    }

    /// Writes the artifact as pretty JSON.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Reads and validates an artifact file.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let text = std::fs::read_to_string(path)?;
        let doc = reds_json::from_str(&text).map_err(ArtifactError::Parse)?;
        Self::from_json(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reds_metamodel::{RandomForest, RandomForestParams};

    pub(crate) fn tiny_artifact(seed: u64) -> ModelArtifact {
        let mut rng = StdRng::seed_from_u64(seed);
        let train = Dataset::from_fn((0..120 * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.5 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap();
        let params = RandomForestParams {
            n_trees: 12,
            ..Default::default()
        };
        let model = RandomForest::fit(&train, &params, &mut rng);
        ModelArtifact {
            function: "corner".to_string(),
            seed,
            pool_seed: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
            pool_design: POOL_DESIGN_UNIFORM.to_string(),
            model: SavedModel::Forest(model),
            train,
        }
    }

    #[test]
    fn artifact_round_trips_through_a_file() {
        use reds_metamodel::Metamodel;
        let artifact = tiny_artifact(1);
        let dir = std::env::temp_dir().join(format!("reds-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        artifact.save(&path).expect("save");
        let loaded = ModelArtifact::load(&path).expect("load");
        assert_eq!(loaded.function, "corner");
        assert_eq!(loaded.seed, 1);
        assert_eq!(loaded.train, artifact.train);
        let q: Vec<f64> = (0..64).map(|i| (i % 13) as f64 / 13.0).collect();
        let a = artifact.model.predict_batch(&q, 2);
        let b = loaded.model.predict_batch(&q, 2);
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn u64_seed_survives_beyond_f64_precision() {
        let mut artifact = tiny_artifact(2);
        artifact.seed = u64::MAX - 3;
        let doc = reds_json::from_str(&artifact.to_json().to_string_compact()).unwrap();
        let loaded = ModelArtifact::from_json(&doc).expect("round trip");
        assert_eq!(loaded.seed, u64::MAX - 3);
    }

    #[test]
    fn mismatched_m_is_rejected() {
        let artifact = tiny_artifact(3);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "m" {
                    *v = Json::num(7.0);
                }
            }
        }
        assert!(ModelArtifact::from_json(&doc).is_err());
    }

    #[test]
    fn mismatched_family_is_rejected() {
        let artifact = tiny_artifact(4);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "family" {
                    *v = Json::str("s");
                }
            }
        }
        let err = match ModelArtifact::from_json(&doc) {
            Err(e) => e,
            Ok(_) => panic!("family disagreeing with the model must be rejected"),
        };
        assert!(err.to_string().contains("family"), "{err}");
    }

    #[test]
    fn pool_provenance_round_trips() {
        let mut artifact = tiny_artifact(8);
        artifact.pool_seed = u64::MAX - 9;
        let doc = reds_json::from_str(&artifact.to_json().to_string_compact()).unwrap();
        let loaded = ModelArtifact::from_json(&doc).expect("round trip");
        assert_eq!(loaded.pool_seed, u64::MAX - 9);
        assert_eq!(loaded.pool_design, POOL_DESIGN_UNIFORM);
    }

    #[test]
    fn v1_artifacts_still_load_with_derived_pool_seed() {
        let artifact = tiny_artifact(9);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "pool_seed" && k != "pool_design");
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(1.0);
                }
            }
        }
        let loaded = ModelArtifact::from_json(&doc).expect("v1 artifacts must load");
        assert_eq!(loaded.pool_seed, loaded.seed);
        assert_eq!(loaded.pool_design, POOL_DESIGN_UNIFORM);
    }

    #[test]
    fn unknown_pool_design_is_rejected() {
        let artifact = tiny_artifact(10);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "pool_design" {
                    *v = Json::str("sobol");
                }
            }
        }
        let err = artifact_err(ModelArtifact::from_json(&doc));
        assert!(err.to_string().contains("pool design"), "{err}");
    }

    fn artifact_err(r: Result<ModelArtifact, ArtifactError>) -> ArtifactError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected an artifact error"),
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let doc = reds_json::from_str(r#"{"kind":"something-else"}"#).unwrap();
        assert!(matches!(
            ModelArtifact::from_json(&doc),
            Err(ArtifactError::Format(_))
        ));
    }
}
