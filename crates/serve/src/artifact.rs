//! The serving artifact: a fitted metamodel `f^am` bundled with the
//! training dataset `D` it was fitted on.
//!
//! `D` rides along because `discover` anchors its validation to the
//! *original* simulated labels (the paper's `D_val = D`, §8.5): PRIM's
//! stopping rule and best-box choice must not float on pseudo-labels.
//! Keeping the pair in one document makes a served `discover` fully
//! reproducible from the artifact file alone.

use std::fmt;
use std::path::Path;

use reds_art::{MappedArtifact, MappedModel, ModelArtifactSpec};
use reds_data::Dataset;
use reds_json::Json;
use reds_metamodel::persist::{f64_from_json, f64_to_json, usize_from_json};
use reds_metamodel::{Metamodel, SavedModel};

/// Current artifact schema version; bumped on incompatible changes.
/// Version 2 added the pool-generation provenance (`pool_seed`,
/// `pool_design`); version-1 artifacts still load, with the training
/// seed standing in as the pool seed.
pub const ARTIFACT_SCHEMA_VERSION: usize = 2;

/// The only pool design servable right now: i.i.d. uniform on
/// `[0,1]^M` (Algorithm 4, line 3 under deep uncertainty).
pub const POOL_DESIGN_UNIFORM: &str = "uniform";

/// Document-type marker distinguishing artifacts from other REDS JSON.
pub const ARTIFACT_KIND: &str = "reds-model-artifact";

/// `reds-art` pool-design code for [`POOL_DESIGN_UNIFORM`].
const ART_POOL_DESIGN_UNIFORM: u32 = 1;

/// Which on-disk format an artifact was loaded from (reported by the
/// server's `info` command).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactFormat {
    /// `reds-json` interchange document.
    Json,
    /// Memory-mapped `.redsart` binary container.
    Art,
}

impl ArtifactFormat {
    /// Stable lowercase name (`"reds-json"` / `"redsart"`).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactFormat::Json => "reds-json",
            ArtifactFormat::Art => "redsart",
        }
    }
}

/// The model inside a [`ModelArtifact`]: either parsed from
/// `reds-json` (owned) or memory-mapped from a `.redsart` container
/// (zero-copy arenas). Both predict through the same kernels with the
/// same accumulation order, so serving results are bit-identical
/// regardless of variant.
pub enum ServedModel {
    /// Owned model decoded from the JSON interchange format.
    Json(SavedModel),
    /// Zero-copy model borrowed from a mapped `.redsart` file.
    Mapped(MappedModel),
}

impl ServedModel {
    /// Family tag ("f", "x", "s").
    pub fn family(&self) -> &'static str {
        match self {
            ServedModel::Json(m) => m.family(),
            ServedModel::Mapped(m) => m.family(),
        }
    }

    /// Input dimensionality.
    pub fn m(&self) -> usize {
        match self {
            ServedModel::Json(m) => m.m(),
            ServedModel::Mapped(m) => m.m(),
        }
    }

    /// Which format this model came from.
    pub fn format(&self) -> ArtifactFormat {
        match self {
            ServedModel::Json(_) => ArtifactFormat::Json,
            ServedModel::Mapped(_) => ArtifactFormat::Art,
        }
    }

    /// The JSON-interchange form, when this model has one (mapped
    /// models are deployment-only; repack from the source JSON).
    pub fn as_saved(&self) -> Option<&SavedModel> {
        match self {
            ServedModel::Json(m) => Some(m),
            ServedModel::Mapped(_) => None,
        }
    }
}

impl From<SavedModel> for ServedModel {
    fn from(m: SavedModel) -> Self {
        ServedModel::Json(m)
    }
}

impl Metamodel for ServedModel {
    fn predict(&self, x: &[f64]) -> f64 {
        match self {
            ServedModel::Json(m) => m.predict(x),
            ServedModel::Mapped(m) => m.predict(x),
        }
    }

    fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        match self {
            ServedModel::Json(model) => model.predict_batch(points, m),
            ServedModel::Mapped(model) => model.predict_batch(points, m),
        }
    }
}

/// A fitted metamodel plus its training data, ready to serve.
pub struct ModelArtifact {
    /// Name of the benchmark function (or data source) `D` came from.
    pub function: String,
    /// Seed the training run used (provenance; not consumed when
    /// serving).
    pub seed: u64,
    /// Seed of the served pseudo-label pool: a `discover_streaming`
    /// request without an explicit seed streams exactly this pool, so
    /// a served run is reproducible from the artifact file alone.
    pub pool_seed: u64,
    /// Design of the served pool (currently always
    /// [`POOL_DESIGN_UNIFORM`]; recorded so future designs cannot be
    /// confused with old artifacts).
    pub pool_design: String,
    /// The fitted metamodel (owned JSON decode or mapped `.redsart`).
    pub model: ServedModel,
    /// The training dataset `D` — the validation anchor for `discover`.
    pub train: Dataset,
}

/// Why an artifact failed to load.
#[derive(Debug)]
pub enum ArtifactError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The file is not valid JSON.
    Parse(reds_json::ParseError),
    /// The document is valid JSON but not a valid artifact.
    Format(String),
    /// A `.redsart` file failed its verification chain.
    Art(reds_art::ArtError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "cannot read artifact: {e}"),
            Self::Parse(e) => write!(f, "artifact is not valid JSON: {e}"),
            Self::Format(m) => write!(f, "invalid artifact: {m}"),
            Self::Art(e) => write!(f, "invalid artifact: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

impl From<std::io::Error> for ArtifactError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<reds_art::ArtError> for ArtifactError {
    fn from(e: reds_art::ArtError) -> Self {
        Self::Art(e)
    }
}

fn format_err(message: impl Into<String>) -> ArtifactError {
    ArtifactError::Format(message.into())
}

impl ModelArtifact {
    /// Which on-disk format this artifact was loaded from (or will
    /// save to).
    pub fn format(&self) -> ArtifactFormat {
        self.model.format()
    }

    /// Serializes the artifact (model, training data, provenance).
    ///
    /// # Panics
    ///
    /// Panics for mapped (`.redsart`-loaded) artifacts — they have no
    /// JSON form; `reds-json` is authored by the fitting tools and
    /// packed *into* `.redsart`, never regenerated from it. [`ModelArtifact::save`]
    /// returns a structured error instead of panicking.
    pub fn to_json(&self) -> Json {
        let model = self
            .model
            .as_saved()
            .expect("mapped artifacts have no JSON form");
        Json::obj([
            ("kind", Json::str(ARTIFACT_KIND)),
            ("schema_version", Json::num(ARTIFACT_SCHEMA_VERSION as f64)),
            ("function", Json::str(self.function.clone())),
            // u64 seeds exceed the exact-integer range of f64; a decimal
            // string survives losslessly.
            ("seed", Json::str(self.seed.to_string())),
            ("pool_seed", Json::str(self.pool_seed.to_string())),
            ("pool_design", Json::str(self.pool_design.clone())),
            ("family", Json::str(model.family())),
            ("m", Json::num(self.train.m() as f64)),
            ("model", model.to_json()),
            (
                "train",
                Json::obj([
                    (
                        "points",
                        Json::arr(self.train.points().iter().map(|&v| f64_to_json(v))),
                    ),
                    (
                        "labels",
                        Json::arr(self.train.labels().iter().map(|&v| f64_to_json(v))),
                    ),
                ]),
            ),
        ])
    }

    /// Decodes and validates an artifact document.
    pub fn from_json(doc: &Json) -> Result<Self, ArtifactError> {
        let str_field = |key: &str| -> Result<&str, ArtifactError> {
            doc.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| format_err(format!("missing string field '{key}'")))
        };
        let kind = str_field("kind")?;
        if kind != ARTIFACT_KIND {
            return Err(format_err(format!(
                "document kind '{kind}' is not '{ARTIFACT_KIND}'"
            )));
        }
        let version = doc
            .get("schema_version")
            .and_then(Json::as_f64)
            .ok_or_else(|| format_err("missing 'schema_version'"))?;
        if version != 1.0 && version != ARTIFACT_SCHEMA_VERSION as f64 {
            return Err(format_err(format!(
                "schema version {version} (this build reads 1 and {ARTIFACT_SCHEMA_VERSION})"
            )));
        }
        let function = str_field("function")?.to_string();
        let seed: u64 = str_field("seed")?
            .parse()
            .map_err(|_| format_err("'seed' must be a decimal u64 string"))?;
        // Version 1 predates pool provenance: fall back to the training
        // seed, which v1-era tooling reused for served pools.
        let (pool_seed, pool_design) = if version == 1.0 {
            (seed, POOL_DESIGN_UNIFORM.to_string())
        } else {
            let pool_seed = str_field("pool_seed")?
                .parse()
                .map_err(|_| format_err("'pool_seed' must be a decimal u64 string"))?;
            let pool_design = str_field("pool_design")?.to_string();
            if pool_design != POOL_DESIGN_UNIFORM {
                return Err(format_err(format!(
                    "unsupported pool design '{pool_design}' (this build serves '{POOL_DESIGN_UNIFORM}')"
                )));
            }
            (pool_seed, pool_design)
        };
        // Checked decode (shared with `metamodel::persist`): rejects
        // negatives, fractions, and values above `u32::MAX`, so a
        // 32-bit target can never silently truncate `m`.
        let m = usize_from_json(
            doc.get("m").ok_or_else(|| format_err("missing 'm'"))?,
            "'m'",
        )
        .map_err(|e| format_err(e.to_string()))?;
        if m == 0 {
            return Err(format_err("'m' must be a positive integer"));
        }
        let model = SavedModel::from_json(
            doc.get("model")
                .ok_or_else(|| format_err("missing 'model'"))?,
        )
        .map_err(|e| format_err(e.to_string()))?;
        if model.m() != m {
            return Err(format_err(format!(
                "model expects {} input columns but the artifact declares m = {m}",
                model.m()
            )));
        }
        let family = str_field("family")?;
        if family != model.family() {
            return Err(format_err(format!(
                "artifact declares family '{family}' but the embedded model is '{}'",
                model.family()
            )));
        }
        let train_doc = doc
            .get("train")
            .ok_or_else(|| format_err("missing 'train'"))?;
        let floats = |key: &str| -> Result<Vec<f64>, ArtifactError> {
            train_doc
                .get(key)
                .and_then(Json::as_array)
                .ok_or_else(|| format_err(format!("'train.{key}' must be an array")))?
                .iter()
                .map(|v| f64_from_json(v).map_err(|e| format_err(e.to_string())))
                .collect()
        };
        let points = floats("points")?;
        let labels = floats("labels")?;
        let train = Dataset::new(points, labels, m).map_err(|e| format_err(e.to_string()))?;
        if train.is_empty() {
            return Err(format_err("training data is empty"));
        }
        Ok(Self {
            function,
            seed,
            pool_seed,
            pool_design,
            model: ServedModel::Json(model),
            train,
        })
    }

    /// Writes the artifact as pretty JSON. Only JSON-backed artifacts
    /// can be saved this way — mapped ones have no JSON form.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        if self.model.as_saved().is_none() {
            return Err(format_err(
                "a mapped .redsart artifact cannot be re-saved as JSON; \
                 pack from the source reds-json artifact instead",
            ));
        }
        let mut text = self.to_json().to_string_pretty();
        text.push('\n');
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Packs the artifact into the `.redsart` zero-copy container.
    /// Like [`ModelArtifact::save`], this needs the JSON-backed model
    /// (packing is a one-way step from interchange to deployment).
    pub fn save_art(&self, path: &Path) -> Result<(), ArtifactError> {
        let model = self.model.as_saved().ok_or_else(|| {
            format_err("a mapped .redsart artifact is already packed; copy the file instead")
        })?;
        if self.pool_design != POOL_DESIGN_UNIFORM {
            return Err(format_err(format!(
                "unsupported pool design '{}' (this build packs '{POOL_DESIGN_UNIFORM}')",
                self.pool_design
            )));
        }
        reds_art::write_model_artifact(
            path,
            &ModelArtifactSpec {
                function: &self.function,
                seed: self.seed,
                pool_seed: self.pool_seed,
                pool_design: ART_POOL_DESIGN_UNIFORM,
                model,
                train: &self.train,
            },
        )?;
        Ok(())
    }

    /// Reads and validates an artifact file in either format, sniffed
    /// from the file's leading bytes: `.redsart` containers are
    /// memory-mapped with zero JSON parsing of model bytes; anything
    /// else takes the JSON interchange path.
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        if file_has_art_magic(path)? {
            return Self::load_art(path);
        }
        let text = std::fs::read_to_string(path)?;
        let doc = reds_json::from_str(&text).map_err(ArtifactError::Parse)?;
        Self::from_json(&doc)
    }

    /// Maps and validates a `.redsart` artifact.
    pub fn load_art(path: &Path) -> Result<Self, ArtifactError> {
        let mapped = MappedArtifact::open(path)?;
        if mapped.pool_design != ART_POOL_DESIGN_UNIFORM {
            return Err(format_err(format!(
                "unsupported pool design code {} (this build serves '{POOL_DESIGN_UNIFORM}')",
                mapped.pool_design
            )));
        }
        Ok(Self {
            function: mapped.function,
            seed: mapped.seed,
            pool_seed: mapped.pool_seed,
            pool_design: POOL_DESIGN_UNIFORM.to_string(),
            model: ServedModel::Mapped(mapped.model),
            train: mapped.train,
        })
    }
}

/// Whether `path` starts with the `.redsart` magic (format sniffing —
/// extensions lie, leading bytes don't).
fn file_has_art_magic(path: &Path) -> Result<bool, std::io::Error> {
    use std::io::Read;
    let mut head = [0u8; 8];
    let mut file = std::fs::File::open(path)?;
    match file.read_exact(&mut head) {
        Ok(()) => Ok(head == reds_art::MAGIC),
        // Shorter than 8 bytes: not a .redsart; let the JSON parser
        // produce its structured error.
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(false),
        Err(e) => Err(e),
    }
}

/// A small deterministic forest artifact shared by this crate's unit
/// tests (batch, registry, server).
#[cfg(test)]
pub(crate) fn tiny_artifact(seed: u64) -> ModelArtifact {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reds_metamodel::{RandomForest, RandomForestParams};

    let mut rng = StdRng::seed_from_u64(seed);
    let train = Dataset::from_fn((0..120 * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
        if x[0] > 0.5 && x[1] > 0.5 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap();
    let params = RandomForestParams {
        n_trees: 12,
        ..Default::default()
    };
    let model = RandomForest::fit(&train, &params, &mut rng);
    ModelArtifact {
        function: "corner".to_string(),
        seed,
        pool_seed: seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1),
        pool_design: POOL_DESIGN_UNIFORM.to_string(),
        model: SavedModel::Forest(model).into(),
        train,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redsart_round_trip_is_bit_identical_and_reports_its_format() {
        use reds_metamodel::Metamodel;
        let artifact = tiny_artifact(21);
        let dir = std::env::temp_dir().join(format!("reds-artifact-art-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.redsart");
        artifact.save_art(&path).expect("pack");
        let loaded = ModelArtifact::load(&path).expect("map");
        assert_eq!(loaded.format(), ArtifactFormat::Art);
        assert_eq!(artifact.format(), ArtifactFormat::Json);
        assert_eq!(loaded.function, artifact.function);
        assert_eq!(loaded.seed, artifact.seed);
        assert_eq!(loaded.pool_seed, artifact.pool_seed);
        assert_eq!(loaded.train, artifact.train);
        let q: Vec<f64> = (0..64).map(|i| (i % 13) as f64 / 13.0).collect();
        let a = artifact.model.predict_batch(&q, 2);
        let b = loaded.model.predict_batch(&q, 2);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        // Mapped artifacts cannot round back into JSON.
        assert!(loaded.save(&dir.join("back.json")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn artifact_round_trips_through_a_file() {
        use reds_metamodel::Metamodel;
        let artifact = tiny_artifact(1);
        let dir = std::env::temp_dir().join(format!("reds-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        artifact.save(&path).expect("save");
        let loaded = ModelArtifact::load(&path).expect("load");
        assert_eq!(loaded.function, "corner");
        assert_eq!(loaded.seed, 1);
        assert_eq!(loaded.train, artifact.train);
        let q: Vec<f64> = (0..64).map(|i| (i % 13) as f64 / 13.0).collect();
        let a = artifact.model.predict_batch(&q, 2);
        let b = loaded.model.predict_batch(&q, 2);
        assert_eq!(a, b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn u64_seed_survives_beyond_f64_precision() {
        let mut artifact = tiny_artifact(2);
        artifact.seed = u64::MAX - 3;
        let doc = reds_json::from_str(&artifact.to_json().to_string_compact()).unwrap();
        let loaded = ModelArtifact::from_json(&doc).expect("round trip");
        assert_eq!(loaded.seed, u64::MAX - 3);
    }

    #[test]
    fn mismatched_m_is_rejected() {
        let artifact = tiny_artifact(3);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "m" {
                    *v = Json::num(7.0);
                }
            }
        }
        assert!(ModelArtifact::from_json(&doc).is_err());
    }

    #[test]
    fn mismatched_family_is_rejected() {
        let artifact = tiny_artifact(4);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "family" {
                    *v = Json::str("s");
                }
            }
        }
        let err = match ModelArtifact::from_json(&doc) {
            Err(e) => e,
            Ok(_) => panic!("family disagreeing with the model must be rejected"),
        };
        assert!(err.to_string().contains("family"), "{err}");
    }

    #[test]
    fn pool_provenance_round_trips() {
        let mut artifact = tiny_artifact(8);
        artifact.pool_seed = u64::MAX - 9;
        let doc = reds_json::from_str(&artifact.to_json().to_string_compact()).unwrap();
        let loaded = ModelArtifact::from_json(&doc).expect("round trip");
        assert_eq!(loaded.pool_seed, u64::MAX - 9);
        assert_eq!(loaded.pool_design, POOL_DESIGN_UNIFORM);
    }

    #[test]
    fn v1_artifacts_still_load_with_derived_pool_seed() {
        let artifact = tiny_artifact(9);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "pool_seed" && k != "pool_design");
            for (k, v) in pairs.iter_mut() {
                if k == "schema_version" {
                    *v = Json::num(1.0);
                }
            }
        }
        let loaded = ModelArtifact::from_json(&doc).expect("v1 artifacts must load");
        assert_eq!(loaded.pool_seed, loaded.seed);
        assert_eq!(loaded.pool_design, POOL_DESIGN_UNIFORM);
    }

    #[test]
    fn unknown_pool_design_is_rejected() {
        let artifact = tiny_artifact(10);
        let mut doc = artifact.to_json();
        if let Json::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "pool_design" {
                    *v = Json::str("sobol");
                }
            }
        }
        let err = artifact_err(ModelArtifact::from_json(&doc));
        assert!(err.to_string().contains("pool design"), "{err}");
    }

    fn artifact_err(r: Result<ModelArtifact, ArtifactError>) -> ArtifactError {
        match r {
            Err(e) => e,
            Ok(_) => panic!("expected an artifact error"),
        }
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let doc = reds_json::from_str(r#"{"kind":"something-else"}"#).unwrap();
        assert!(matches!(
            ModelArtifact::from_json(&doc),
            Err(ArtifactError::Format(_))
        ));
    }
}
