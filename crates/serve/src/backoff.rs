//! Exponential backoff with full jitter, deterministic under a seed.
//!
//! Every retrier in the serving stack — a client re-issuing a
//! `too_busy` request, the fleet coordinator reconnecting to a worker,
//! a timed-out request, a parked round with zero live workers — runs
//! through one of these schedules: the delay for attempt `k` is drawn
//! uniformly from `[0, min(cap, base · 2^k)]` ("full jitter", which
//! de-synchronises a fleet of retriers better than truncated binary
//! backoff). The draw comes from a seeded [`StdRng`], so a test
//! replaying the same fault plan sees the same delays.
//!
//! The schedule lives in `reds-serve` (the lowest crate in the serving
//! stack) and is re-exported by `reds-fleet`, so the client, router,
//! and coordinator all share one implementation.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic full-jitter backoff schedule.
#[derive(Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// A schedule starting at `base` and ceiling-capped at `cap`,
    /// jittered by the stream of `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The delay before the next retry; each call advances the
    /// schedule one attempt.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 · base caps the doubling itself
        self.attempt = self.attempt.saturating_add(1);
        let ceiling = self
            .base
            .saturating_mul(1u32 << exp)
            .min(self.cap)
            .as_millis() as u64;
        Duration::from_millis(self.rng.gen_range(0..=ceiling))
    }

    /// Retries spent since construction or the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Starts the schedule over after a success (the jitter stream
    /// keeps advancing, so resets do not replay delays).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_under_the_growing_ceiling_and_the_cap() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(160);
        let mut b = Backoff::new(base, cap, 7);
        for k in 0..12 {
            let ceiling = base.saturating_mul(1 << k.min(20)).min(cap);
            let d = b.next_delay();
            assert!(d <= ceiling, "attempt {k}: {d:?} > {ceiling:?}");
        }
        assert_eq!(b.attempts(), 12);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() <= base);
    }

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<Duration> {
            let mut b = Backoff::new(Duration::from_millis(5), Duration::from_secs(1), seed);
            (0..8).map(|_| b.next_delay()).collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4), "different seeds diverge");
    }
}
