//! Bounded per-model micro-batching prediction queues.
//!
//! Every model in the registry owns one `BatchQueue`: a bounded job
//! queue drained by a worker thread that concatenates all queued
//! requests' query rows into a single buffer and makes **one**
//! `predict_batch` call — the ensemble models' tree-major kernels then
//! fan the combined batch out across the `reds-par` workers, so `k`
//! concurrent small requests cost one cache-friendly pass over the
//! trees instead of `k`.
//!
//! Two properties the queue guarantees:
//!
//! * **Single-version batches.** The worker pins the model's current
//!   version ([`VersionSlot::pin`]) exactly once per batch, *after*
//!   collecting the batch's jobs. Every answer in a batch therefore
//!   comes from one version, and a hot swap can never produce a
//!   mixed-version batch — there is no second read to race with.
//! * **Explicit backpressure.** The queue is bounded
//!   (`ServeLimits::queue_depth`); when it is full, `predict` fails
//!   immediately with a structured `too_busy` error instead of
//!   queueing unboundedly. Because each model has its own queue, a
//!   saturated model backpressures only its own callers.
//!
//! Correctness does not depend on how requests coalesce: every model's
//! `predict_batch` is row-independent and bit-identical under any
//! chunking, so a request's answers are the same whether it was served
//! alone or inside a batch (the equivalence tests assert this against
//! in-process calls).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};

use crate::protocol::ServeError;
use crate::registry::VersionSlot;

struct Job {
    points: Vec<f64>,
    reply: mpsc::Sender<(u64, Vec<f64>)>,
}

/// Counters the `info` command reports, per model.
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Requests served.
    pub requests: AtomicU64,
    /// Kernel calls made (requests ÷ batches ≥ 1 under concurrency).
    pub batches: AtomicU64,
    /// Largest number of requests coalesced into one kernel call.
    pub max_batched: AtomicU64,
    /// Requests rejected with `too_busy` because the queue was full.
    pub rejected: AtomicU64,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
    stats: BatchStats,
}

/// Handle to one model's bounded micro-batch queue and its worker
/// thread. The worker exits — after draining what is queued — when the
/// queue is closed or the handle is dropped.
pub struct BatchQueue {
    shared: Arc<Shared>,
}

impl BatchQueue {
    /// Spawns the worker for model `name`, predicting with whatever
    /// version `slot` holds at the start of each batch. `capacity`
    /// bounds the number of waiting jobs; requests beyond it are
    /// rejected with `too_busy`.
    pub(crate) fn spawn(name: &str, slot: VersionSlot, m: usize, capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            stats: BatchStats::default(),
        });
        let worker = Arc::clone(&shared);
        let label = format!("reds-batch-{name}");
        std::thread::Builder::new()
            .name(label)
            .spawn(move || worker_loop(&worker, &slot, m))
            .expect("spawn batch worker");
        Self { shared }
    }

    /// Number of jobs waiting right now (excludes the batch the worker
    /// is computing).
    pub fn depth(&self) -> usize {
        self.shared.state.lock().expect("queue poisoned").jobs.len()
    }

    /// The admission cap.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Worker counters.
    pub fn stats(&self) -> &BatchStats {
        &self.shared.stats
    }

    /// Queues `points` (row-major, already validated) and blocks for
    /// `(version, predictions)` — the version being the one the whole
    /// batch was served with.
    pub fn predict(&self, points: Vec<f64>) -> Result<(u64, Vec<f64>), ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let mut state = self.shared.state.lock().expect("queue poisoned");
            if state.closed {
                return Err(ServeError::internal("prediction worker exited"));
            }
            if state.jobs.len() >= self.shared.capacity {
                self.shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::too_busy(format!(
                    "prediction queue is at its depth limit of {}; retry later",
                    self.shared.capacity
                )));
            }
            state.jobs.push_back(Job {
                points,
                reply: reply_tx,
            });
        }
        self.shared.ready.notify_one();
        reply_rx
            .recv()
            .map_err(|_| ServeError::internal("prediction worker dropped the request"))
    }

    /// Closes the queue: the worker drains what is already queued,
    /// then exits; subsequent `predict` calls fail with an internal
    /// error.
    pub fn close(&self) {
        self.shared.state.lock().expect("queue poisoned").closed = true;
        self.shared.ready.notify_all();
    }
}

impl Drop for BatchQueue {
    fn drop(&mut self) {
        self.close();
    }
}

fn worker_loop(shared: &Shared, slot: &VersionSlot, m: usize) {
    loop {
        let jobs: Vec<Job> = {
            let mut state = shared.state.lock().expect("queue poisoned");
            while state.jobs.is_empty() && !state.closed {
                state = shared.ready.wait(state).expect("queue poisoned");
            }
            if state.jobs.is_empty() {
                return; // closed and drained
            }
            state.jobs.drain(..).collect()
        };
        shared
            .stats
            .requests
            .fetch_add(jobs.len() as u64, Ordering::Relaxed);
        shared.stats.batches.fetch_add(1, Ordering::Relaxed);
        shared
            .stats
            .max_batched
            .fetch_max(jobs.len() as u64, Ordering::Relaxed);
        serve_batch(jobs, slot, m);
    }
}

/// Serves one collected batch: pins the current version (once — this
/// is the no-mixed-versions guarantee), predicts, slices answers back
/// to their requests.
fn serve_batch(mut jobs: Vec<Job>, slot: &VersionSlot, m: usize) {
    let version = slot.pin();
    let rows_per_job: Vec<usize> = jobs.iter().map(|j| j.points.len() / m).collect();
    let combined: Vec<f64> = if jobs.len() == 1 {
        std::mem::take(&mut jobs[0].points)
    } else {
        let total: usize = jobs.iter().map(|j| j.points.len()).sum();
        let mut buf = Vec::with_capacity(total);
        for job in &jobs {
            buf.extend_from_slice(&job.points);
        }
        buf
    };
    let total_rows: usize = rows_per_job.iter().sum();
    // A panic inside the model must not kill the worker — that would
    // brick every future request on a server whose contract is
    // per-request errors. Catch it, drop this batch's reply channels
    // (each waiter gets an `internal` error), and keep serving.
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        version.predict_batch(&combined, m)
    }));
    let preds = match outcome {
        Ok(preds) if preds.len() == total_rows => preds,
        // Panic or a short/long prediction vector: drop the replies
        // rather than mis-slice answers.
        _ => return,
    };
    let v = version.version;
    if jobs.len() == 1 {
        let job = jobs.pop().expect("one job");
        let _ = job.reply.send((v, preds));
    } else {
        let mut offset = 0usize;
        for (job, rows) in jobs.into_iter().zip(rows_per_job) {
            let _ = job.reply.send((v, preds[offset..offset + rows].to_vec()));
            offset += rows;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::tiny_artifact;
    use crate::protocol::{ErrorCode, ServeLimits};
    use crate::registry::{ModelEntry, ModelRegistry, ModelVersion};
    use reds_metamodel::Metamodel;
    use std::time::Duration;

    fn entry(limits: &ServeLimits) -> (ModelRegistry, Arc<ModelEntry>) {
        let registry = ModelRegistry::new(tiny_artifact(1), limits);
        let entry = registry.get(None).unwrap();
        (registry, entry)
    }

    #[test]
    fn batched_predictions_match_direct_calls_bitwise() {
        let (_registry, entry) = entry(&ServeLimits::default());
        let model = entry.current();
        let m = entry.m();
        let queries: Vec<Vec<f64>> = (0..16)
            .map(|k| {
                (0..((k % 5) + 1) * m)
                    .map(|i| (i + k) as f64 / 17.0)
                    .collect()
            })
            .collect();
        let mut handles = Vec::new();
        for q in &queries {
            let e = Arc::clone(&entry);
            let q = q.clone();
            handles.push(std::thread::spawn(move || e.predict(q).expect("predicts")));
        }
        for (handle, q) in handles.into_iter().zip(&queries) {
            let (version, got) = handle.join().expect("thread");
            assert_eq!(version, 1, "single-version entry");
            let want = model.artifact.model.predict_batch(q, m);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = entry.stats();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 16);
        assert!(stats.batches.load(Ordering::Relaxed) <= 16);
    }

    #[test]
    fn empty_request_yields_empty_predictions() {
        let (_registry, entry) = entry(&ServeLimits::default());
        let (version, preds) = entry.predict(Vec::new()).unwrap();
        assert_eq!(version, 1);
        assert_eq!(preds, Vec::<f64>::new());
    }

    #[test]
    fn worker_survives_a_panicking_model() {
        // A panic inside predict must fail only the in-flight request
        // (structured internal error) and leave the worker serving.
        let (_registry, entry) = entry(&ServeLimits::default());
        let shimmed = ModelVersion::with_shim(
            2,
            tiny_artifact(1),
            Box::new(|points, m| {
                assert!(
                    !points.contains(&-1.0),
                    "poison value triggers a model panic"
                );
                Some(vec![0.5; points.len() / m])
            }),
        );
        entry.install_version(Arc::new(shimmed), Duration::from_millis(100));
        let err = entry
            .predict(vec![-1.0; entry.m()])
            .expect_err("poisoned request fails");
        assert_eq!(err.code, ErrorCode::Internal);
        // The next request is served normally.
        let (version, preds) = entry.predict(vec![0.1; entry.m()]).unwrap();
        assert_eq!(version, 2);
        assert_eq!(preds, vec![0.5]);
    }

    #[test]
    fn worker_rejects_a_misbehaving_prediction_length() {
        // A model returning the wrong number of predictions must not
        // mis-slice answers across coalesced requests.
        let (_registry, entry) = entry(&ServeLimits::default());
        let shimmed =
            ModelVersion::with_shim(2, tiny_artifact(1), Box::new(|_, _| Some(vec![0.5; 999])));
        entry.install_version(Arc::new(shimmed), Duration::from_millis(100));
        let err = entry
            .predict(vec![0.1; entry.m()])
            .expect_err("length mismatch");
        assert_eq!(err.code, ErrorCode::Internal);
    }

    #[test]
    fn full_queue_rejects_with_too_busy_and_frees_up() {
        // Block the worker inside a predict, fill the queue behind it,
        // and the next request must bounce with too_busy immediately.
        let limits = ServeLimits {
            queue_depth: 1,
            ..Default::default()
        };
        let (_registry, entry) = entry(&limits);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let entered = Arc::new((Mutex::new(false), Condvar::new()));
        let shim_gate = Arc::clone(&gate);
        let shim_entered = Arc::clone(&entered);
        let shimmed = ModelVersion::with_shim(
            2,
            tiny_artifact(1),
            Box::new(move |points, m| {
                {
                    let (flag, cv) = &*shim_entered;
                    *flag.lock().unwrap() = true;
                    cv.notify_all();
                }
                let (open, cv) = &*shim_gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                Some(vec![0.5; points.len() / m])
            }),
        );
        entry.install_version(Arc::new(shimmed), Duration::from_millis(50));
        let m = entry.m();
        // First request: the worker takes it and blocks in the shim.
        let e1 = Arc::clone(&entry);
        let t1 = std::thread::spawn(move || e1.predict(vec![0.1; m]));
        {
            let (flag, cv) = &*entered;
            let mut flag = flag.lock().unwrap();
            while !*flag {
                flag = cv.wait(flag).unwrap();
            }
        }
        // Second request: queued (depth 1).
        let e2 = Arc::clone(&entry);
        let t2 = std::thread::spawn(move || e2.predict(vec![0.2; m]));
        while entry.queue_depth() < 1 {
            std::thread::yield_now();
        }
        // Third request: the queue is full — immediate too_busy.
        let err = entry
            .predict(vec![0.3; m])
            .expect_err("bounded queue rejects");
        assert_eq!(err.code, ErrorCode::TooBusy);
        assert!(err.message.contains("depth limit of 1"), "{}", err.message);
        assert_eq!(entry.stats().rejected.load(Ordering::Relaxed), 1);
        // Release the gate: both queued requests complete normally.
        {
            let (open, cv) = &*gate;
            *open.lock().unwrap() = true;
            cv.notify_all();
        }
        assert_eq!(t1.join().unwrap().unwrap().1, vec![0.5]);
        assert_eq!(t2.join().unwrap().unwrap().1, vec![0.5]);
    }
}
