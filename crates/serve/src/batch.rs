//! Micro-batching prediction worker.
//!
//! All connections funnel their `predict_batch` work through one
//! worker thread that owns the model. The worker drains every request
//! queued at that moment, concatenates their query rows into a single
//! buffer, and makes **one** `predict_batch` call — the ensemble
//! models' tree-major kernels then fan the combined batch out across
//! the `reds-par` workers, so `k` concurrent small requests cost one
//! cache-friendly pass over the trees instead of `k`.
//!
//! Correctness does not depend on how requests coalesce: every model's
//! `predict_batch` is row-independent and bit-identical under any
//! chunking, so a request's answers are the same whether it was served
//! alone or inside a batch (the equivalence tests assert this against
//! in-process calls).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use reds_metamodel::{Metamodel, SavedModel};

use crate::protocol::ServeError;

struct Job {
    points: Vec<f64>,
    reply: mpsc::Sender<Vec<f64>>,
}

/// Counters the `info` command reports.
#[derive(Debug, Default)]
pub struct BatchStats {
    /// Requests served.
    pub requests: AtomicU64,
    /// Kernel calls made (requests ÷ batches ≥ 1 under concurrency).
    pub batches: AtomicU64,
    /// Largest number of requests coalesced into one kernel call.
    pub max_batched: AtomicU64,
}

/// Handle to the prediction worker; cheap to clone, one per connection.
/// `mpsc::Sender` is `Sync`, so concurrent sends need no lock — the
/// only serialization point is the worker itself.
#[derive(Clone)]
pub struct Batcher {
    tx: mpsc::Sender<Job>,
    stats: Arc<BatchStats>,
    m: usize,
}

impl Batcher {
    /// Spawns the worker thread owning `model`. The thread exits when
    /// the last `Batcher` clone is dropped.
    pub fn spawn(model: Arc<SavedModel>) -> Self {
        let m = model.m();
        Self::spawn_with(move |points, m| model.predict_batch(points, m), m)
    }

    /// Spawns the worker around an arbitrary batch-prediction function
    /// (the server passes a closure borrowing the model through its
    /// shared artifact).
    pub fn spawn_with(
        predict: impl Fn(&[f64], usize) -> Vec<f64> + Send + 'static,
        m: usize,
    ) -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let stats = Arc::new(BatchStats::default());
        let worker_stats = Arc::clone(&stats);
        std::thread::spawn(move || {
            while let Ok(first) = rx.recv() {
                let mut jobs = vec![first];
                // Everything already queued joins this batch; later
                // arrivals form the next one.
                while let Ok(next) = rx.try_recv() {
                    jobs.push(next);
                }
                worker_stats
                    .requests
                    .fetch_add(jobs.len() as u64, Ordering::Relaxed);
                worker_stats.batches.fetch_add(1, Ordering::Relaxed);
                worker_stats
                    .max_batched
                    .fetch_max(jobs.len() as u64, Ordering::Relaxed);
                // A panic inside the model must not kill the worker —
                // that would brick every future request on a server
                // whose contract is per-request errors. Catch it, drop
                // this batch's reply channels (each waiter gets an
                // `internal` error), and keep serving.
                let rows_per_job: Vec<usize> = jobs.iter().map(|j| j.points.len() / m).collect();
                let combined: Vec<f64> = if jobs.len() == 1 {
                    std::mem::take(&mut jobs[0].points)
                } else {
                    let total: usize = jobs.iter().map(|j| j.points.len()).sum();
                    let mut buf = Vec::with_capacity(total);
                    for job in &jobs {
                        buf.extend_from_slice(&job.points);
                    }
                    buf
                };
                let total_rows: usize = rows_per_job.iter().sum();
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    predict(&combined, m)
                }));
                let preds = match outcome {
                    Ok(preds) if preds.len() == total_rows => preds,
                    // Panic or a short/long prediction vector: drop the
                    // replies rather than mis-slice answers.
                    _ => continue,
                };
                if jobs.len() == 1 {
                    let job = jobs.pop().expect("one job");
                    let _ = job.reply.send(preds);
                } else {
                    let mut offset = 0usize;
                    for (job, rows) in jobs.into_iter().zip(rows_per_job) {
                        let _ = job.reply.send(preds[offset..offset + rows].to_vec());
                        offset += rows;
                    }
                }
            }
        });
        Self { tx, stats, m }
    }

    /// Number of input columns the model expects.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Worker counters.
    pub fn stats(&self) -> &BatchStats {
        &self.stats
    }

    /// Queues `points` (row-major, already validated to `m` columns)
    /// and blocks for the predictions.
    pub fn predict(&self, points: Vec<f64>) -> Result<Vec<f64>, ServeError> {
        let (reply_tx, reply_rx) = mpsc::channel();
        self.tx
            .send(Job {
                points,
                reply: reply_tx,
            })
            .map_err(|_| ServeError::internal("prediction worker exited"))?;
        reply_rx
            .recv()
            .map_err(|_| ServeError::internal("prediction worker dropped the request"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reds_data::Dataset;
    use reds_metamodel::{RandomForest, RandomForestParams};

    fn model() -> Arc<SavedModel> {
        let mut rng = StdRng::seed_from_u64(1);
        let train = Dataset::from_fn((0..200).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] + x[1] > 1.0 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap();
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        Arc::new(SavedModel::Forest(RandomForest::fit(
            &train, &params, &mut rng,
        )))
    }

    #[test]
    fn batched_predictions_match_direct_calls_bitwise() {
        let model = model();
        let batcher = Batcher::spawn(Arc::clone(&model));
        let queries: Vec<Vec<f64>> = (0..16)
            .map(|k| {
                (0..((k % 5) + 1) * 2)
                    .map(|i| (i + k) as f64 / 17.0)
                    .collect()
            })
            .collect();
        let mut handles = Vec::new();
        for q in &queries {
            let b = batcher.clone();
            let q = q.clone();
            handles.push(std::thread::spawn(move || b.predict(q).expect("predicts")));
        }
        for (handle, q) in handles.into_iter().zip(&queries) {
            let got = handle.join().expect("thread");
            let want = model.predict_batch(q, 2);
            assert_eq!(got.len(), want.len());
            for (a, b) in got.iter().zip(&want) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let stats = batcher.stats();
        assert_eq!(stats.requests.load(Ordering::Relaxed), 16);
        assert!(stats.batches.load(Ordering::Relaxed) <= 16);
    }

    #[test]
    fn empty_request_yields_empty_predictions() {
        let batcher = Batcher::spawn(model());
        assert_eq!(batcher.predict(Vec::new()).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn worker_survives_a_panicking_model() {
        // A panic inside predict must fail only the in-flight request
        // (structured internal error) and leave the worker serving.
        let batcher = Batcher::spawn_with(
            |points, m| {
                assert!(
                    !points.contains(&-1.0),
                    "poison value triggers a model panic"
                );
                vec![0.5; points.len() / m]
            },
            2,
        );
        let err = batcher
            .predict(vec![-1.0, 0.0])
            .expect_err("poisoned request fails");
        assert_eq!(err.code, crate::protocol::ErrorCode::Internal);
        // The next request is served normally.
        assert_eq!(batcher.predict(vec![0.1, 0.2]).unwrap(), vec![0.5]);
    }

    #[test]
    fn worker_rejects_a_misbehaving_prediction_length() {
        // A model returning the wrong number of predictions must not
        // mis-slice answers across coalesced requests.
        let batcher = Batcher::spawn_with(|_, _| vec![0.5; 999], 2);
        let err = batcher
            .predict(vec![0.1, 0.2])
            .expect_err("length mismatch");
        assert_eq!(err.code, crate::protocol::ErrorCode::Internal);
    }
}
