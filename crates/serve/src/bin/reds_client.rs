//! Command-line client for a running `reds_serve` (or `reds_router`)
//! process.
//!
//! ```text
//! reds_client --addr 127.0.0.1:7878 --cmd info
//! reds_client --addr … --cmd predict_batch --m 2 --points 0.1,0.9,0.4,0.2
//! reds_client --addr … --cmd discover --l 2000 --seed 7 --algorithm prim
//! reds_client --addr … --cmd discover_streaming --l 2000000 --chunk-rows 65536 [--ooc]
//! reds_client --addr … --cmd swap --path next.redsart [--model champion]
//! reds_client --addr … --cmd shutdown
//! ```
//!
//! `--model` addresses a named registry model (default model
//! otherwise). `too_busy` refusals are retried with jittered
//! exponential backoff (up to `--busy-retries` attempts, base delay
//! `--retry-base-ms`); `--no-retry` fails fast instead.
//!
//! Prints the server's `result` object as compact JSON on stdout.
//! Exits 0 on success, 1 on a server/transport error, 2 on bad usage.

use std::process::exit;
use std::time::Duration;

use reds_serve::{Algorithm, Backoff, Client, DiscoverParams, StreamDiscoverParams};

const USAGE: &str = "usage: reds_client --addr HOST:PORT \
--cmd <info|predict_batch|discover|discover_streaming|swap|shutdown> \
[--model NAME] [--m N --points a,b,…] [--l N] [--seed N] [--algorithm prim|bi] [--bnd X] \
[--chunk-rows N] [--ooc] [--path ARTIFACT] [--busy-retries N] [--retry-base-ms N] [--no-retry]";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut addr = String::new();
    let mut cmd = String::new();
    let mut model: Option<String> = None;
    let mut m = 0usize;
    let mut points: Vec<f64> = Vec::new();
    let mut params = DiscoverParams::default();
    let mut seed_given = false;
    let mut chunk_rows = 0usize;
    let mut ooc = false;
    let mut swap_path = String::new();
    let mut busy_retries = 5u32;
    let mut retry_base_ms = 50u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} expects {what}")))
        };
        match flag.as_str() {
            "--addr" => addr = value("host:port"),
            "--cmd" => cmd = value("a command"),
            "--model" => model = Some(value("a model name")),
            "--path" => swap_path = value("a file path"),
            "--m" => {
                let raw = value("an integer");
                m = raw
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--m expects an integer, got '{raw}'")));
            }
            "--points" => {
                let raw = value("a comma-separated list");
                points = raw
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            fail(format!("--points expects numbers, got '{s}'"))
                        })
                    })
                    .collect();
            }
            "--l" => {
                let raw = value("an integer");
                params.l = raw
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--l expects an integer, got '{raw}'")));
            }
            "--seed" => {
                let raw = value("an integer");
                params.seed = raw
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--seed expects a u64, got '{raw}'")));
                seed_given = true;
            }
            "--chunk-rows" => {
                let raw = value("an integer");
                chunk_rows = raw.parse().unwrap_or_else(|_| {
                    fail(format!("--chunk-rows expects an integer, got '{raw}'"))
                });
            }
            "--algorithm" => {
                params.algorithm = match value("prim|bi").as_str() {
                    "prim" => Algorithm::Prim,
                    "bi" => Algorithm::BestInterval,
                    other => fail(format!("unknown algorithm '{other}'")),
                }
            }
            "--bnd" => {
                let raw = value("a number");
                params.bnd = raw
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--bnd expects a number, got '{raw}'")));
            }
            "--busy-retries" => {
                let raw = value("an integer");
                busy_retries = raw.parse().unwrap_or_else(|_| {
                    fail(format!("--busy-retries expects an integer, got '{raw}'"))
                });
            }
            "--retry-base-ms" => {
                let raw = value("milliseconds");
                retry_base_ms = raw.parse().unwrap_or_else(|_| {
                    fail(format!("--retry-base-ms expects an integer, got '{raw}'"))
                });
            }
            "--ooc" => ooc = true,
            "--no-retry" => busy_retries = 0,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    if addr.is_empty() {
        fail("--addr is required");
    }
    let mut client = Client::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1);
    });
    if busy_retries > 0 {
        // Full-jitter exponential backoff, seeded per process so
        // colliding clients spread out instead of retrying in lockstep.
        client.set_busy_retry(
            busy_retries,
            Backoff::new(
                Duration::from_millis(retry_base_ms),
                Duration::from_secs(5),
                u64::from(std::process::id()) ^ 0x5eed,
            ),
        );
    }
    let model = model.as_deref();
    let outcome = match cmd.as_str() {
        "info" => client.info().map(|j| j.to_string_compact()),
        "predict_batch" => {
            if m == 0 {
                fail("predict_batch needs --m and --points");
            }
            client
                .predict_batch_on(model, &points, m)
                .map(|(_, preds)| {
                    reds_json::Json::arr(preds.into_iter().map(reds_json::Json::num))
                        .to_string_compact()
                })
        }
        "discover" => client
            .discover_on(model, &params)
            .map(|r| r.to_json().to_string_compact()),
        "discover_streaming" => {
            let stream_params = StreamDiscoverParams {
                l: params.l,
                // No --seed on the command line = serve the pool the
                // artifact recorded (reproducible from the file alone).
                seed: seed_given.then_some(params.seed),
                algorithm: params.algorithm,
                bnd: params.bnd,
                chunk_rows,
                ooc,
            };
            client
                .discover_streaming_on(model, &stream_params)
                .map(|r| r.to_json().to_string_compact())
        }
        "swap" => {
            if swap_path.is_empty() {
                fail("swap needs --path");
            }
            client
                .swap(model, &swap_path)
                .map(|j| j.to_string_compact())
        }
        "shutdown" => client
            .shutdown()
            .map(|()| "{\"shutdown\":true}".to_string()),
        "" => fail("--cmd is required"),
        other => fail(format!("unknown command '{other}'")),
    };
    match outcome {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            exit(1);
        }
    }
}
