//! The shard-routing front binary: fan `predict_batch` requests across
//! a fleet of `reds_serve` worker processes over the same NDJSON
//! protocol, reassembling answers bit-identically.
//!
//! ```text
//! cargo run --release -p reds-serve --bin reds_router -- \
//!     --shard 127.0.0.1:7879 --shard 127.0.0.1:7880 \
//!     [--addr 127.0.0.1:7878] [--max-frame-bytes N] [--max-rows N] \
//!     [--max-connections N] [--propagate-shutdown]
//! ```
//!
//! Clients connect to the router exactly as they would to a single
//! `reds_serve`: `predict_batch` is split row-contiguously across the
//! shards, `discover`/`discover_streaming` route whole to one shard by
//! seed, `swap` broadcasts so the fleet flips together, and `info`
//! aggregates per-shard state. With `--propagate-shutdown`, a client
//! `shutdown` stops the workers too.
//!
//! Prints `listening on <addr>` on stdout once ready.

use std::process::exit;
use std::sync::Arc;

use reds_serve::reactor::ConnGauges;
use reds_serve::{poller_backend, serve_handler, Router, ServeLimits};

const USAGE: &str = "usage: reds_router --shard HOST:PORT [--shard HOST:PORT]… \
[--addr HOST:PORT] [--max-frame-bytes N] [--max-rows N] [--max-connections N] \
[--propagate-shutdown]";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut shards: Vec<String> = Vec::new();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut limits = ServeLimits::default();
    let mut propagate = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} expects {what}")))
        };
        match flag.as_str() {
            "--shard" => shards.push(value("host:port")),
            "--addr" => addr = value("host:port"),
            "--max-frame-bytes" => limits.max_frame_bytes = parse_usize(&flag, &value("a size")),
            "--max-rows" => limits.max_rows_per_request = parse_usize(&flag, &value("a count")),
            "--max-connections" => limits.max_connections = parse_usize(&flag, &value("a count")),
            "--propagate-shutdown" => propagate = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    if shards.is_empty() {
        fail("at least one --shard is required");
    }
    eprintln!(
        "routing across {} shard(s) over the {} reactor: {}",
        shards.len(),
        poller_backend(),
        shards.join(", "),
    );
    let router = Arc::new(Router::new(shards, limits.clone()).propagate_shutdown(propagate));
    let gauges = Arc::new(ConnGauges::default());
    let handle = serve_handler(router, &addr, limits, gauges).unwrap_or_else(|e| fail(e));
    println!("listening on {}", handle.addr());
    handle.join();
    eprintln!("shutdown complete");
}

fn parse_usize(flag: &str, raw: &str) -> usize {
    raw.parse()
        .unwrap_or_else(|_| fail(format!("{flag} expects an integer, got '{raw}'")))
}
