//! The serving binary: load one or more model artifacts into the
//! versioned registry and serve them over TCP until a client sends
//! `shutdown` (or the process is killed).
//!
//! ```text
//! cargo run --release -p reds-serve --bin reds_serve -- \
//!     --model model.json [--load NAME=PATH]… [--addr 127.0.0.1:7878] \
//!     [--max-frame-bytes N] [--max-rows N] [--max-discover-l N] \
//!     [--max-connections N] [--queue-depth N] [--max-discovers N] \
//!     [--max-models N] [--drain-ms N]
//! ```
//!
//! `--model` becomes the registry's default model; each `--load`
//! registers an additional named model. Any model can later be
//! hot-swapped with the `swap` command without dropping a request.
//!
//! Prints `listening on <addr>` on stdout once ready, so scripts can
//! wait for the line before connecting.

use std::path::Path;
use std::process::exit;
use std::sync::Arc;

use reds_serve::{poller_backend, serve_service, ModelArtifact, ServeLimits, Service};

const USAGE: &str = "usage: reds_serve --model <artifact.json> [--load NAME=PATH]… \
[--addr HOST:PORT] [--max-frame-bytes N] [--max-rows N] [--max-discover-l N] \
[--max-connections N] [--queue-depth N] [--max-discovers N] [--max-models N] [--drain-ms N]";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut model_path = String::new();
    let mut extra_models: Vec<(String, String)> = Vec::new();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut limits = ServeLimits::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} expects {what}")))
        };
        match flag.as_str() {
            "--model" => model_path = value("a file path"),
            "--load" => {
                let raw = value("NAME=PATH");
                let (name, path) = raw
                    .split_once('=')
                    .unwrap_or_else(|| fail(format!("--load expects NAME=PATH, got '{raw}'")));
                extra_models.push((name.to_string(), path.to_string()));
            }
            "--addr" => addr = value("host:port"),
            "--max-frame-bytes" => limits.max_frame_bytes = parse_usize(&flag, &value("a size")),
            "--max-rows" => limits.max_rows_per_request = parse_usize(&flag, &value("a count")),
            "--max-discover-l" => limits.max_discover_l = parse_usize(&flag, &value("a count")),
            "--max-connections" => limits.max_connections = parse_usize(&flag, &value("a count")),
            "--queue-depth" => limits.queue_depth = parse_usize(&flag, &value("a count")),
            "--max-discovers" => {
                limits.max_active_discovers = parse_usize(&flag, &value("a count"))
            }
            "--max-models" => limits.max_models = parse_usize(&flag, &value("a count")),
            "--drain-ms" => {
                limits.swap_drain_ms = parse_usize(&flag, &value("milliseconds")) as u64
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    if model_path.is_empty() {
        fail("--model is required");
    }
    let artifact = ModelArtifact::load(Path::new(&model_path)).unwrap_or_else(|e| fail(e));
    eprintln!(
        "loaded {} metamodel for '{}' ({}, m = {}, n_train = {}, kernel = {}, exp = {})",
        artifact.model.family(),
        artifact.function,
        artifact.format().name(),
        artifact.train.m(),
        artifact.train.n(),
        reds_metamodel::kernels::active().name(),
        reds_metamodel::kernels::vexp::backend().name(),
    );
    let service = Service::new(artifact, limits);
    for (name, path) in &extra_models {
        let extra = ModelArtifact::load(Path::new(path)).unwrap_or_else(|e| fail(e));
        eprintln!(
            "loaded {} metamodel for '{}' ({}, m = {}) as model '{name}'",
            extra.model.family(),
            extra.function,
            extra.format().name(),
            extra.train.m(),
        );
        service
            .registry()
            .install(name, extra)
            .unwrap_or_else(|e| fail(e.message));
    }
    eprintln!(
        "serving {} model(s) over the {} reactor",
        service.registry().len(),
        poller_backend(),
    );
    let handle = serve_service(Arc::new(service), &addr).unwrap_or_else(|e| fail(e));
    println!("listening on {}", handle.addr());
    handle.join();
    eprintln!("shutdown complete");
}

fn parse_usize(flag: &str, raw: &str) -> usize {
    raw.parse()
        .unwrap_or_else(|_| fail(format!("{flag} expects an integer, got '{raw}'")))
}
