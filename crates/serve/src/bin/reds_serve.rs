//! The serving binary: load a model artifact, serve it over TCP until
//! a client sends `shutdown` (or the process is killed).
//!
//! ```text
//! cargo run --release -p reds-serve --bin reds_serve -- \
//!     --model model.json [--addr 127.0.0.1:7878] \
//!     [--max-frame-bytes N] [--max-rows N] [--max-discover-l N] \
//!     [--max-connections N]
//! ```
//!
//! Prints `listening on <addr>` on stdout once ready, so scripts can
//! wait for the line before connecting.

use std::path::Path;
use std::process::exit;

use reds_serve::{serve, ModelArtifact, ServeLimits};

const USAGE: &str = "usage: reds_serve --model <artifact.json> [--addr HOST:PORT] \
[--max-frame-bytes N] [--max-rows N] [--max-discover-l N] [--max-connections N]";

fn fail(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    eprintln!("{USAGE}");
    exit(2);
}

fn main() {
    let mut model_path = String::new();
    let mut addr = "127.0.0.1:7878".to_string();
    let mut limits = ServeLimits::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(format!("{flag} expects {what}")))
        };
        match flag.as_str() {
            "--model" => model_path = value("a file path"),
            "--addr" => addr = value("host:port"),
            "--max-frame-bytes" => limits.max_frame_bytes = parse_usize(&flag, &value("a size")),
            "--max-rows" => limits.max_rows_per_request = parse_usize(&flag, &value("a count")),
            "--max-discover-l" => limits.max_discover_l = parse_usize(&flag, &value("a count")),
            "--max-connections" => limits.max_connections = parse_usize(&flag, &value("a count")),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => fail(format!("unknown flag '{other}'")),
        }
    }
    if model_path.is_empty() {
        fail("--model is required");
    }
    let artifact = ModelArtifact::load(Path::new(&model_path)).unwrap_or_else(|e| fail(e));
    eprintln!(
        "loaded {} metamodel for '{}' (m = {}, n_train = {}, kernel = {})",
        artifact.model.family(),
        artifact.function,
        artifact.train.m(),
        artifact.train.n(),
        reds_metamodel::kernels::active().name(),
    );
    let handle = serve(artifact, &addr, limits).unwrap_or_else(|e| fail(e));
    println!("listening on {}", handle.addr());
    handle.join();
    eprintln!("shutdown complete");
}

fn parse_usize(flag: &str, raw: &str) -> usize {
    raw.parse()
        .unwrap_or_else(|_| fail(format!("{flag} expects an integer, got '{raw}'")))
}
