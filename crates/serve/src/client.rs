//! A small blocking client for the serving protocol, used by the
//! integration tests, the CI smoke test, and the `reds_client` CLI.
//!
//! Every read runs under a socket read timeout with a bounded retry
//! budget — a stalled or wedged server surfaces as a structured
//! [`ClientError::Timeout`] after the configured patience instead of
//! blocking the calling thread forever.

use std::fmt;
use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use reds_json::Json;
use reds_subgroup::SdResult;

use crate::protocol::{DiscoverParams, Request, StreamDiscoverParams};
use crate::wire::{self, Frame, RetryBudget};

/// How long each blocking read waits before re-checking its budget;
/// the total patience is [`Client::set_timeout`]'s duration rounded up
/// to a whole number of these slices.
const READ_SLICE: Duration = Duration::from_millis(250);

/// Replies slower than this are treated as a dead server. Generous,
/// because `discover` at large `l` legitimately takes a while — but
/// finite, so no caller ever hangs forever by default.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// No complete reply arrived within the configured read timeout.
    Timeout {
        /// The total patience that was exhausted.
        after: Duration,
    },
    /// The server answered with a structured error.
    Server {
        /// Wire error code ("parse", "bad_request", "too_busy", …).
        code: String,
        /// Server-provided description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Timeout { after } => {
                write!(f, "no reply within {:.1}s", after.as_secs_f64())
            }
            Self::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a serving process.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
    timeout: Duration,
}

impl Client {
    /// Connects to a running server. Replies are awaited under
    /// [`DEFAULT_TIMEOUT`]; adjust with [`Client::set_timeout`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        // The socket timeout paces the retry loop; the *total* patience
        // is enforced by a RetryBudget per read, so it can be changed
        // later without touching socket options.
        stream.set_read_timeout(Some(READ_SLICE))?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
            timeout: DEFAULT_TIMEOUT,
        })
    }

    /// Sets the total patience for each reply. `None` restores the
    /// default — reads are always bounded; there is no infinite mode.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.timeout = timeout.unwrap_or(DEFAULT_TIMEOUT);
        Ok(())
    }

    /// Sends one raw line and reads one raw response line — the escape
    /// hatch the malformed-frame tests use.
    pub fn send_raw_line(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut budget = RetryBudget::for_total(self.timeout, READ_SLICE);
        // The server never sends a frame this large; the cap only stops
        // a corrupted or hostile stream from ballooning client memory.
        const MAX_RESPONSE_BYTES: usize = 256 << 20;
        match wire::read_frame(&mut self.reader, MAX_RESPONSE_BYTES, &mut budget)? {
            Frame::Line(line) => {
                let text = String::from_utf8_lossy(&line);
                reds_json::from_str(text.trim())
                    .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
            }
            Frame::Eof => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
            Frame::TooLarge => Err(ClientError::Protocol(format!(
                "response frame exceeds {MAX_RESPONSE_BYTES} bytes"
            ))),
            Frame::TimedOut => Err(ClientError::Timeout {
                after: self.timeout,
            }),
        }
    }

    /// Sends a request and returns the `result` object of a successful
    /// response, or the structured server error.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        let sent_id = request.id();
        let mut text = request.to_json().to_string_compact();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let doc = self.read_response()?;
        let id = doc.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
        let ok = doc.get("ok").and_then(Json::as_bool);
        // Accept error frames carrying id 0 even when a different id was
        // sent: the server answers pre-request failures that way — an
        // admission-control `too_busy` refusal at accept time, or a
        // frame the server could not parse back to an id.
        if id != sent_id as f64 && !(id == 0.0 && ok == Some(false)) {
            return Err(ClientError::Protocol(format!(
                "response id {id} does not match request id {sent_id}"
            )));
        }
        match ok {
            Some(true) => doc
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".to_string())),
            Some(false) => {
                let error = doc.get("error");
                let get = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: get("code"),
                    message: get("message"),
                })
            }
            None => Err(ClientError::Protocol("missing 'ok'".to_string())),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Predicts every row of a row-major buffer with `m` columns.
    pub fn predict_batch(&mut self, points: &[f64], m: usize) -> Result<Vec<f64>, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::PredictBatch {
            id,
            points: points.to_vec(),
            m,
        })?;
        let arr = result
            .get("predictions")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'predictions'".to_string()))?;
        arr.iter()
            .map(|v| {
                // Numbers plus the "inf"/"-inf"/"nan" markers, matching
                // the server's (and the model files') encoding.
                reds_metamodel::persist::f64_from_json(v)
                    .map_err(|_| ClientError::Protocol("non-numeric prediction".to_string()))
            })
            .collect()
    }

    /// Runs scenario discovery on the server.
    pub fn discover(&mut self, params: &DiscoverParams) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::Discover {
            id,
            params: params.clone(),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Runs streaming scenario discovery on the server. Omitting the
    /// seed (`params.seed = None`) asks the server to stream the pool
    /// recorded in its artifact (`pool_seed`), reproducible from the
    /// artifact file alone.
    pub fn discover_streaming(
        &mut self,
        params: &StreamDiscoverParams,
    ) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::DiscoverStreaming {
            id,
            params: params.clone(),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Fetches the model/server description.
    pub fn info(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Info { id })
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Shutdown { id }).map(|_| ())
    }
}
