//! A small blocking client for the serving protocol, used by the
//! integration tests, the CI smoke test, and the `reds_client` CLI.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use reds_json::Json;
use reds_subgroup::SdResult;

use crate::protocol::{DiscoverParams, Request, StreamDiscoverParams};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// The server answered with a structured error.
    Server {
        /// Wire error code ("parse", "bad_request", …).
        code: String,
        /// Server-provided description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a serving process.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            next_id: 1,
        })
    }

    /// Sets a read timeout on replies (`None` blocks indefinitely).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.writer.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one raw line and reads one raw response line — the escape
    /// hatch the malformed-frame tests use.
    pub fn send_raw_line(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        reds_json::from_str(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
    }

    /// Sends a request and returns the `result` object of a successful
    /// response, or the structured server error.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        let sent_id = request.id();
        let mut text = request.to_json().to_string_compact();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let doc = self.read_response()?;
        let id = doc.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
        if id != sent_id as f64 {
            return Err(ClientError::Protocol(format!(
                "response id {id} does not match request id {sent_id}"
            )));
        }
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => doc
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".to_string())),
            Some(false) => {
                let error = doc.get("error");
                let get = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: get("code"),
                    message: get("message"),
                })
            }
            None => Err(ClientError::Protocol("missing 'ok'".to_string())),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Predicts every row of a row-major buffer with `m` columns.
    pub fn predict_batch(&mut self, points: &[f64], m: usize) -> Result<Vec<f64>, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::PredictBatch {
            id,
            points: points.to_vec(),
            m,
        })?;
        let arr = result
            .get("predictions")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'predictions'".to_string()))?;
        arr.iter()
            .map(|v| {
                // Numbers plus the "inf"/"-inf"/"nan" markers, matching
                // the server's (and the model files') encoding.
                reds_metamodel::persist::f64_from_json(v)
                    .map_err(|_| ClientError::Protocol("non-numeric prediction".to_string()))
            })
            .collect()
    }

    /// Runs scenario discovery on the server.
    pub fn discover(&mut self, params: &DiscoverParams) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::Discover {
            id,
            params: params.clone(),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Runs streaming scenario discovery on the server. Omitting the
    /// seed (`params.seed = None`) asks the server to stream the pool
    /// recorded in its artifact (`pool_seed`), reproducible from the
    /// artifact file alone.
    pub fn discover_streaming(
        &mut self,
        params: &StreamDiscoverParams,
    ) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::DiscoverStreaming {
            id,
            params: params.clone(),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Fetches the model/server description.
    pub fn info(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Info { id })
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Shutdown { id }).map(|_| ())
    }
}
