//! A small blocking client for the serving protocol, used by the
//! integration tests, the CI smoke test, the shard [`router`]
//! (crate::router), and the `reds_client` CLI.
//!
//! Every read runs under a socket read timeout with a bounded retry
//! budget — a stalled or wedged server surfaces as a structured
//! [`ClientError::Timeout`] after the configured patience instead of
//! blocking the calling thread forever. `too_busy` refusals (a full
//! prediction queue, or admission control at accept time) can
//! optionally be retried with jittered exponential [`Backoff`],
//! reconnecting per attempt because the server may have closed the
//! refused connection.

use std::fmt;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use reds_json::Json;
use reds_subgroup::SdResult;

use crate::backoff::Backoff;
use crate::protocol::{DiscoverParams, Request, StreamDiscoverParams};
use crate::wire::{self, Frame, RetryBudget};

/// How long each blocking read waits before re-checking its budget;
/// the total patience is [`Client::set_timeout`]'s duration rounded up
/// to a whole number of these slices.
const READ_SLICE: Duration = Duration::from_millis(250);

/// Replies slower than this are treated as a dead server. Generous,
/// because `discover` at large `l` legitimately takes a while — but
/// finite, so no caller ever hangs forever by default.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(120);

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's reply could not be understood.
    Protocol(String),
    /// No complete reply arrived within the configured read timeout.
    Timeout {
        /// The total patience that was exhausted.
        after: Duration,
    },
    /// The server answered with a structured error.
    Server {
        /// Wire error code ("parse", "bad_request", "too_busy", …).
        code: String,
        /// Server-provided description.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Timeout { after } => {
                write!(f, "no reply within {:.1}s", after.as_secs_f64())
            }
            Self::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Retry policy for `too_busy` refusals.
struct BusyRetry {
    retries: u32,
    backoff: Backoff,
}

/// One connection to a serving process.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    next_id: u64,
    timeout: Duration,
    busy: Option<BusyRetry>,
}

impl Client {
    /// Connects to a running server. Replies are awaited under
    /// [`DEFAULT_TIMEOUT`]; adjust with [`Client::set_timeout`].
    /// `too_busy` refusals are returned immediately; opt into retries
    /// with [`Client::set_busy_retry`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        let peer = stream.peer_addr()?;
        stream.set_nodelay(true).ok();
        // The socket timeout paces the retry loop; the *total* patience
        // is enforced by a RetryBudget per read, so it can be changed
        // later without touching socket options.
        stream.set_read_timeout(Some(READ_SLICE))?;
        Ok(Self {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            peer,
            next_id: 1,
            timeout: DEFAULT_TIMEOUT,
            busy: None,
        })
    }

    /// Sets the total patience for each reply. `None` restores the
    /// default — reads are always bounded; there is no infinite mode.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.timeout = timeout.unwrap_or(DEFAULT_TIMEOUT);
        Ok(())
    }

    /// Enables retrying `too_busy` server refusals: up to `retries`
    /// extra attempts, sleeping a jittered exponential delay drawn from
    /// `backoff` between attempts. Each retry reconnects, because an
    /// admission-control refusal closes the rejected connection.
    pub fn set_busy_retry(&mut self, retries: u32, backoff: Backoff) {
        self.busy = Some(BusyRetry { retries, backoff });
    }

    /// Disables `too_busy` retries (the default).
    pub fn clear_busy_retry(&mut self) {
        self.busy = None;
    }

    /// Reconnects to the same peer, replacing the underlying stream;
    /// the id counter and timeout carry over.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.peer)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(READ_SLICE))?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// Sends one raw line and reads one raw response line — the escape
    /// hatch the malformed-frame tests use.
    pub fn send_raw_line(&mut self, line: &str) -> Result<Json, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Json, ClientError> {
        let mut budget = RetryBudget::for_total(self.timeout, READ_SLICE);
        // The server never sends a frame this large; the cap only stops
        // a corrupted or hostile stream from ballooning client memory.
        const MAX_RESPONSE_BYTES: usize = 256 << 20;
        match wire::read_frame(&mut self.reader, MAX_RESPONSE_BYTES, &mut budget)? {
            Frame::Line(line) => {
                let text = String::from_utf8_lossy(&line);
                reds_json::from_str(text.trim())
                    .map_err(|e| ClientError::Protocol(format!("unparseable response: {e}")))
            }
            Frame::Eof => Err(ClientError::Protocol(
                "server closed the connection".to_string(),
            )),
            Frame::TooLarge => Err(ClientError::Protocol(format!(
                "response frame exceeds {MAX_RESPONSE_BYTES} bytes"
            ))),
            Frame::TimedOut => Err(ClientError::Timeout {
                after: self.timeout,
            }),
        }
    }

    /// Sends a request and returns the `result` object of a successful
    /// response, or the structured server error. With
    /// [`Client::set_busy_retry`] enabled, `too_busy` refusals are
    /// retried under jittered exponential backoff.
    pub fn call(&mut self, request: &Request) -> Result<Json, ClientError> {
        if let Some(b) = self.busy.as_mut() {
            b.backoff.reset();
        }
        let mut attempt = 0u32;
        loop {
            let outcome = self.call_once(request);
            let busy =
                matches!(&outcome, Err(ClientError::Server { code, .. }) if code == "too_busy");
            if !busy {
                return outcome;
            }
            let delay = match self.busy.as_mut() {
                Some(b) if attempt < b.retries => b.backoff.next_delay(),
                _ => return outcome,
            };
            attempt += 1;
            std::thread::sleep(delay);
            // The refusal may have come with a closed connection
            // (accept-time admission control does that); a fresh
            // connection covers both cases.
            self.reconnect()?;
        }
    }

    fn call_once(&mut self, request: &Request) -> Result<Json, ClientError> {
        let sent_id = request.id();
        let mut text = request.to_json().to_string_compact();
        text.push('\n');
        self.writer.write_all(text.as_bytes())?;
        self.writer.flush()?;
        let doc = self.read_response()?;
        let id = doc.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
        let ok = doc.get("ok").and_then(Json::as_bool);
        // Accept error frames carrying id 0 even when a different id was
        // sent: the server answers pre-request failures that way — an
        // admission-control `too_busy` refusal at accept time, or a
        // frame the server could not parse back to an id.
        if id != sent_id as f64 && !(id == 0.0 && ok == Some(false)) {
            return Err(ClientError::Protocol(format!(
                "response id {id} does not match request id {sent_id}"
            )));
        }
        match ok {
            Some(true) => doc
                .get("result")
                .cloned()
                .ok_or_else(|| ClientError::Protocol("missing 'result'".to_string())),
            Some(false) => {
                let error = doc.get("error");
                let get = |key: &str| {
                    error
                        .and_then(|e| e.get(key))
                        .and_then(Json::as_str)
                        .unwrap_or("unknown")
                        .to_string()
                };
                Err(ClientError::Server {
                    code: get("code"),
                    message: get("message"),
                })
            }
            None => Err(ClientError::Protocol("missing 'ok'".to_string())),
        }
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Predicts every row of a row-major buffer with `m` columns
    /// against the server's default model.
    pub fn predict_batch(&mut self, points: &[f64], m: usize) -> Result<Vec<f64>, ClientError> {
        self.predict_batch_on(None, points, m)
            .map(|(_, preds)| preds)
    }

    /// Predicts against a named registry model (`None` = the default),
    /// also returning the registry version that served the batch.
    pub fn predict_batch_on(
        &mut self,
        model: Option<&str>,
        points: &[f64],
        m: usize,
    ) -> Result<(u64, Vec<f64>), ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::PredictBatch {
            id,
            points: points.to_vec(),
            m,
            model: model.map(str::to_string),
        })?;
        let arr = result
            .get("predictions")
            .and_then(Json::as_array)
            .ok_or_else(|| ClientError::Protocol("missing 'predictions'".to_string()))?;
        let preds = arr
            .iter()
            .map(|v| {
                // Numbers plus the "inf"/"-inf"/"nan" markers, matching
                // the server's (and the model files') encoding.
                reds_metamodel::persist::f64_from_json(v)
                    .map_err(|_| ClientError::Protocol("non-numeric prediction".to_string()))
            })
            .collect::<Result<Vec<f64>, ClientError>>()?;
        let version = result.get("version").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        Ok((version, preds))
    }

    /// Runs scenario discovery on the server's default model.
    pub fn discover(&mut self, params: &DiscoverParams) -> Result<SdResult, ClientError> {
        self.discover_on(None, params)
    }

    /// Runs scenario discovery on a named registry model.
    pub fn discover_on(
        &mut self,
        model: Option<&str>,
        params: &DiscoverParams,
    ) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::Discover {
            id,
            params: params.clone(),
            model: model.map(str::to_string),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Runs streaming scenario discovery on the server's default
    /// model. Omitting the seed (`params.seed = None`) asks the server
    /// to stream the pool recorded in its artifact (`pool_seed`),
    /// reproducible from the artifact file alone.
    pub fn discover_streaming(
        &mut self,
        params: &StreamDiscoverParams,
    ) -> Result<SdResult, ClientError> {
        self.discover_streaming_on(None, params)
    }

    /// Runs streaming scenario discovery on a named registry model.
    pub fn discover_streaming_on(
        &mut self,
        model: Option<&str>,
        params: &StreamDiscoverParams,
    ) -> Result<SdResult, ClientError> {
        let id = self.fresh_id();
        let result = self.call(&Request::DiscoverStreaming {
            id,
            params: params.clone(),
            model: model.map(str::to_string),
        })?;
        SdResult::from_json(&result)
            .ok_or_else(|| ClientError::Protocol("unparseable 'boxes'".to_string()))
    }

    /// Hot-swaps a registry model (`None` = the default) to the
    /// artifact at `path` on the server's filesystem; returns the
    /// swap outcome object (new version, drain report).
    pub fn swap(&mut self, model: Option<&str>, path: &str) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Swap {
            id,
            model: model.map(str::to_string),
            path: path.to_string(),
        })
    }

    /// Fetches the model/server description.
    pub fn info(&mut self) -> Result<Json, ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Info { id })
    }

    /// Asks the server to shut down.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        let id = self.fresh_id();
        self.call(&Request::Shutdown { id }).map(|_| ())
    }
}
