//! `reds-serve`: the long-lived scenario-discovery service.
//!
//! The REDS pipeline trains an accurate metamodel `f^am` once and then
//! uses it to pseudo-label arbitrarily many points (Algorithm 4). This
//! crate turns that asymmetry into a serving layer: fitted models are
//! saved to [`artifact`](crate::artifact::ModelArtifact) files together
//! with their training data, loaded into a versioned
//! [`registry`](crate::registry::ModelRegistry), and queried many times
//! over a newline-delimited JSON [`protocol`] — `predict_batch`,
//! `discover`, `discover_streaming`, `swap`, `info`, `shutdown`.
//!
//! The serving fleet is built from four layers:
//!
//! * **Connection core.** One [`reactor`] thread multiplexes every
//!   socket through epoll (Linux) or poll, framing NDJSON with the
//!   shared [`wire`] push decoder; complete frames are served by a
//!   small executor pool and replies are written back in per-connection
//!   request order.
//! * **Versioned registry.** Each model name maps to a
//!   [`registry::ModelEntry`] whose current version flips atomically on
//!   `swap`: in-flight requests finish against the version they pinned,
//!   the old artifact is dropped (and unmapped) only after the last
//!   pin releases, and no request ever observes two versions.
//! * **Backpressure.** Each model owns a bounded micro-batch
//!   [`batch::BatchQueue`]; a full queue answers `too_busy` immediately
//!   instead of stalling the fleet, and [`Client`] can retry those with
//!   jittered exponential [`backoff`].
//! * **Shard routing.** The [`router`] fans one logical `predict_batch`
//!   across worker processes over the same framing and reassembles the
//!   answer bit-identically.
//!
//! Three properties the tests pin down:
//!
//! * **Bit-identical serving.** Saving, loading, serving, swapping, and
//!   shard-routing a model changes no prediction bit: a socket
//!   `predict_batch` equals the in-process `Metamodel::predict_batch`,
//!   and a served `discover` equals the in-process run with the same
//!   seed.
//! * **Micro-batching.** Concurrent `predict_batch` requests are
//!   coalesced by the model's queue worker into one tree-major kernel
//!   call that fans out across the `reds-par` workers (see
//!   `RandomForest::predict_batch`).
//! * **Hardened boundary.** Frames are size-capped, requests are
//!   validated (width, NaN, limits) before touching the kernels, and
//!   every failure — including a handler panic — becomes a structured
//!   per-request error, never a dead server.

#![warn(missing_docs)]

pub mod artifact;
pub mod backoff;
pub mod batch;
pub mod client;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod router;
pub mod server;
pub mod wire;

pub use artifact::{
    ArtifactError, ArtifactFormat, ModelArtifact, ServedModel, POOL_DESIGN_UNIFORM,
};
pub use backoff::Backoff;
pub use batch::{BatchQueue, BatchStats};
pub use client::{Client, ClientError};
pub use protocol::{
    Algorithm, DiscoverParams, ErrorCode, Request, ServeError, ServeLimits, StreamDiscoverParams,
};
pub use reactor::{poller_backend, ConnGauges, FrameHandler};
pub use registry::{ModelEntry, ModelRegistry, ModelVersion, SwapOutcome, DEFAULT_MODEL};
pub use router::Router;
pub use server::{
    run_discover, run_discover_streaming, run_discover_streaming_ooc, serve, serve_handler,
    serve_service, validate_points, ServerHandle, Service,
};
pub use wire::{Frame, FrameBuffer, FrameEvent, RetryBudget, Wait, WaitPolicy};
