//! `reds-serve`: the long-lived scenario-discovery service.
//!
//! The REDS pipeline trains an accurate metamodel `f^am` once and then
//! uses it to pseudo-label arbitrarily many points (Algorithm 4). This
//! crate turns that asymmetry into a serving layer: a fitted model is
//! saved to a JSON [`artifact`](crate::artifact::ModelArtifact)
//! together with its training data, loaded once by a threaded TCP
//! server, and queried many times over a newline-delimited JSON
//! [`protocol`] — `predict_batch`, `discover`, `discover_streaming`,
//! `info`, `shutdown`.
//!
//! Three properties the tests pin down:
//!
//! * **Bit-identical serving.** Saving, loading, and serving a model
//!   changes no prediction bit: a socket `predict_batch` equals the
//!   in-process `Metamodel::predict_batch`, and a served `discover`
//!   equals the in-process run with the same seed.
//! * **Micro-batching.** Concurrent `predict_batch` requests are
//!   coalesced by a single [`batch::Batcher`] worker into one
//!   tree-major kernel call that fans out across the `reds-par`
//!   workers (see `RandomForest::predict_batch`).
//! * **Hardened boundary.** Frames are size-capped, requests are
//!   validated (width, NaN, limits) before touching the kernels, and
//!   every failure — including a handler panic — becomes a structured
//!   per-request error, never a dead server.

#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod client;
pub mod protocol;
pub mod server;
pub mod wire;

pub use artifact::{
    ArtifactError, ArtifactFormat, ModelArtifact, ServedModel, POOL_DESIGN_UNIFORM,
};
pub use client::{Client, ClientError};
pub use protocol::{
    Algorithm, DiscoverParams, ErrorCode, Request, ServeError, ServeLimits, StreamDiscoverParams,
};
pub use server::{
    run_discover, run_discover_streaming, serve, validate_points, ServerHandle, Service,
};
pub use wire::{Frame, RetryBudget, Wait, WaitPolicy};
