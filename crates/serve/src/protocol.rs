//! The wire protocol: newline-delimited JSON request/response frames.
//!
//! Every request is one JSON object on one line; every response is one
//! JSON object on one line. Requests carry a client-chosen integer
//! `id` that the response echoes, so a client may pipeline several
//! requests on one connection.
//!
//! ```text
//! → {"id":1,"cmd":"predict_batch","m":2,"points":[0.1,0.9,0.4,0.2]}
//! ← {"id":1,"ok":true,"result":{"predictions":[0.92,0.04]}}
//! → {"id":2,"cmd":"discover","l":2000,"seed":7,"algorithm":"prim"}
//! ← {"id":2,"ok":true,"result":{"boxes":[…]}}
//! → {"id":3,"cmd":"info"}
//! → {"id":4,"cmd":"shutdown"}
//! ← {"id":4,"ok":true,"result":{"shutdown":true}}
//! ```
//!
//! Failures are **structured, per-request errors** — the server never
//! answers a malformed or invalid frame with a panic or a dropped
//! connection (the one exception: an oversized frame closes the
//! connection after the error response, because the remainder of the
//! over-long line cannot be resynchronized safely):
//!
//! ```text
//! ← {"id":5,"ok":false,"error":{"code":"bad_request","message":"…"}}
//! ```

use reds_json::Json;

/// Resource bounds the server enforces at the trust boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeLimits {
    /// Maximum bytes in one request frame (one line). Larger frames get
    /// a `too_large` error and the connection is closed.
    pub max_frame_bytes: usize,
    /// Maximum number of query rows in one `predict_batch` request.
    pub max_rows_per_request: usize,
    /// Maximum pseudo-label sample size `L` a `discover` request may
    /// ask for.
    pub max_discover_l: usize,
    /// Maximum concurrently served connections. A connection beyond the
    /// cap is answered with a single `too_busy` error frame and closed
    /// instead of spawning an unbounded handler thread.
    pub max_connections: usize,
    /// Maximum jobs waiting in one model's micro-batch queue. A request
    /// arriving at a full queue is answered with `too_busy` immediately
    /// (explicit per-model backpressure) instead of queueing without
    /// bound.
    pub queue_depth: usize,
    /// Maximum `discover`/`discover_streaming` requests computing at
    /// once across all models; requests beyond the cap get `too_busy`.
    pub max_active_discovers: usize,
    /// Maximum models the registry will hold.
    pub max_models: usize,
    /// How long a hot swap waits for in-flight requests against the old
    /// version to finish before reporting `drained: false` (the old
    /// mapping is still released only when its last request completes).
    pub swap_drain_ms: u64,
}

impl Default for ServeLimits {
    fn default() -> Self {
        Self {
            max_frame_bytes: 8 * 1024 * 1024,
            max_rows_per_request: 262_144,
            max_discover_l: 1_000_000,
            max_connections: 256,
            queue_depth: 512,
            max_active_discovers: 8,
            max_models: 16,
            swap_drain_ms: 5_000,
        }
    }
}

/// Machine-readable error category of a failed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame is not valid JSON, or not a valid request object.
    Parse,
    /// The request is well-formed but semantically invalid for this
    /// model (wrong width, NaN coordinates, unknown algorithm, …).
    BadRequest,
    /// The request exceeds a configured limit.
    TooLarge,
    /// The server is at its concurrent-connection (or lease) capacity;
    /// the peer should back off and retry.
    TooBusy,
    /// The server failed internally; the request may be retried.
    Internal,
}

impl ErrorCode {
    /// Stable wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Parse => "parse",
            Self::BadRequest => "bad_request",
            Self::TooLarge => "too_large",
            Self::TooBusy => "too_busy",
            Self::Internal => "internal",
        }
    }

    /// Inverse of [`ErrorCode::as_str`] (unknown strings map to
    /// [`ErrorCode::Internal`]).
    pub fn from_wire(s: &str) -> Self {
        match s {
            "parse" => Self::Parse,
            "bad_request" => Self::BadRequest,
            "too_large" => Self::TooLarge,
            "too_busy" => Self::TooBusy,
            _ => Self::Internal,
        }
    }
}

/// A structured request failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError {
    /// Category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Constructor shorthand.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// A `parse` error.
    pub fn parse(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Parse, message)
    }

    /// A `bad_request` error.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, message)
    }

    /// A `too_large` error.
    pub fn too_large(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::TooLarge, message)
    }

    /// A `too_busy` error.
    pub fn too_busy(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::TooBusy, message)
    }

    /// An `internal` error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, message)
    }
}

/// Subgroup-discovery algorithm a `discover` request selects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// PRIM peeling + pasting (the paper's default SD step).
    Prim,
    /// Best Interval beam search.
    BestInterval,
}

impl Algorithm {
    /// Wire name ("prim" / "bi").
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Prim => "prim",
            Self::BestInterval => "bi",
        }
    }
}

/// Parameters of a served `discover` request (Algorithm 4 with the
/// already-fitted metamodel standing in for lines 1–2).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscoverParams {
    /// Number of pseudo-labelled points `L`.
    pub l: usize,
    /// Seed of the uniform sample and the SD algorithm's RNG; the same
    /// seed always returns the same boxes.
    pub seed: u64,
    /// Subgroup-discovery algorithm to run.
    pub algorithm: Algorithm,
    /// Hard-label threshold `bnd` on the metamodel output.
    pub bnd: f64,
}

impl Default for DiscoverParams {
    fn default() -> Self {
        Self {
            l: 20_000,
            seed: 0,
            algorithm: Algorithm::Prim,
            bnd: 0.5,
        }
    }
}

/// Parameters of a served `discover_streaming` request: scenario
/// discovery through the bounded-memory pipeline (`reds-stream`) —
/// bit-identical boxes to `discover` with the same resolved seed, at a
/// working set bounded by `chunk_rows` during construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDiscoverParams {
    /// Number of pseudo-labelled points `L`.
    pub l: usize,
    /// Seed of the uniform pool; `None` uses the artifact's recorded
    /// `pool_seed`, making the served stream reproducible from the
    /// artifact file alone.
    pub seed: Option<u64>,
    /// Subgroup-discovery algorithm to run.
    pub algorithm: Algorithm,
    /// Hard-label threshold `bnd` on the metamodel output.
    pub bnd: f64,
    /// Rows per streamed chunk; `0` selects the server default. On the
    /// wire, `0` is spelled by **omitting** the field — an explicit
    /// `"chunk_rows": 0` is rejected with `bad_request`, so a client
    /// that meant to pick a chunk size never silently gets the default.
    pub chunk_rows: usize,
    /// Serve the request through the out-of-core paged column store
    /// (`reds-ooc`) instead of the in-memory pool: the pseudo-labelled
    /// pool is written as a scratch `.redsart` artifact and the search
    /// pages it in under a bounded cache. Boxes are bit-identical to
    /// the in-memory path. Absent on the wire means `false`.
    pub ooc: bool,
}

impl Default for StreamDiscoverParams {
    fn default() -> Self {
        Self {
            l: 20_000,
            seed: None,
            algorithm: Algorithm::Prim,
            bnd: 0.5,
            chunk_rows: 0,
            ooc: false,
        }
    }
}

/// One decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Pseudo-label a batch of query points.
    PredictBatch {
        /// Echoed request id.
        id: u64,
        /// Row-major query buffer.
        points: Vec<f64>,
        /// Declared number of columns.
        m: usize,
        /// Registry model to query; `None` is the default model.
        model: Option<String>,
    },
    /// Run scenario discovery with the loaded model.
    Discover {
        /// Echoed request id.
        id: u64,
        /// Discovery parameters.
        params: DiscoverParams,
        /// Registry model to query; `None` is the default model.
        model: Option<String>,
    },
    /// Run scenario discovery through the streaming pipeline.
    DiscoverStreaming {
        /// Echoed request id.
        id: u64,
        /// Streaming discovery parameters.
        params: StreamDiscoverParams,
        /// Registry model to query; `None` is the default model.
        model: Option<String>,
    },
    /// Hot-swap a registry model to a new artifact loaded from a path
    /// on the server's filesystem.
    Swap {
        /// Echoed request id.
        id: u64,
        /// Registry model to replace (created when new); `None` is the
        /// default model.
        model: Option<String>,
        /// Server-side path of the `.redsart` / reds-json artifact.
        path: String,
    },
    /// Describe the loaded models and server counters.
    Info {
        /// Echoed request id.
        id: u64,
    },
    /// Stop accepting connections and exit the server loop.
    Shutdown {
        /// Echoed request id.
        id: u64,
    },
}

impl Request {
    /// The request id (0 when the client sent none).
    pub fn id(&self) -> u64 {
        match self {
            Self::PredictBatch { id, .. }
            | Self::Discover { id, .. }
            | Self::DiscoverStreaming { id, .. }
            | Self::Swap { id, .. }
            | Self::Info { id }
            | Self::Shutdown { id } => *id,
        }
    }

    /// The registry model the request targets (`None` for the default
    /// model and for commands without a model field).
    pub fn model(&self) -> Option<&str> {
        match self {
            Self::PredictBatch { model, .. }
            | Self::Discover { model, .. }
            | Self::DiscoverStreaming { model, .. }
            | Self::Swap { model, .. } => model.as_deref(),
            Self::Info { .. } | Self::Shutdown { .. } => None,
        }
    }

    /// Serializes the request to its wire object (used by the client).
    pub fn to_json(&self) -> Json {
        // An absent model means "the default model"; it must stay
        // absent on the wire (same convention as the streaming seed).
        let push_model = |pairs: &mut Vec<(&str, Json)>, model: &Option<String>| {
            if let Some(model) = model {
                pairs.push(("model", Json::str(model.clone())));
            }
        };
        match self {
            Self::PredictBatch {
                id,
                points,
                m,
                model,
            } => {
                let mut pairs = vec![
                    ("id", Json::num(*id as f64)),
                    ("cmd", Json::str("predict_batch")),
                    ("m", Json::num(*m as f64)),
                    // Datasets (and validate_points) allow ±∞
                    // coordinates, and JSON numbers cannot carry them —
                    // reuse the persistence layer's marker-string
                    // encoding so typed clients can send exactly what an
                    // in-process call accepts. NaN travels too, and is
                    // then rejected at the boundary with its row/column.
                    (
                        "points",
                        Json::arr(
                            points
                                .iter()
                                .map(|&v| reds_metamodel::persist::f64_to_json(v)),
                        ),
                    ),
                ];
                push_model(&mut pairs, model);
                Json::obj(pairs)
            }
            Self::Discover { id, params, model } => {
                let mut pairs = vec![
                    ("id", Json::num(*id as f64)),
                    ("cmd", Json::str("discover")),
                    ("l", Json::num(params.l as f64)),
                    ("seed", Json::str(params.seed.to_string())),
                    ("algorithm", Json::str(params.algorithm.as_str())),
                    ("bnd", Json::num(params.bnd)),
                ];
                push_model(&mut pairs, model);
                Json::obj(pairs)
            }
            Self::DiscoverStreaming { id, params, model } => {
                let mut pairs = vec![
                    ("id", Json::num(*id as f64)),
                    ("cmd", Json::str("discover_streaming")),
                    ("l", Json::num(params.l as f64)),
                    ("algorithm", Json::str(params.algorithm.as_str())),
                    ("bnd", Json::num(params.bnd)),
                ];
                // chunk_rows = 0 means "server default" in the typed
                // params; the wire spells that by omission (an explicit
                // 0 on the wire is rejected on decode).
                if params.chunk_rows > 0 {
                    pairs.push(("chunk_rows", Json::num(params.chunk_rows as f64)));
                }
                if params.ooc {
                    pairs.push(("ooc", Json::Bool(true)));
                }
                // An absent seed means "use the artifact's pool seed";
                // it must stay absent on the wire.
                if let Some(seed) = params.seed {
                    pairs.push(("seed", Json::str(seed.to_string())));
                }
                push_model(&mut pairs, model);
                Json::obj(pairs)
            }
            Self::Swap { id, model, path } => {
                let mut pairs = vec![
                    ("id", Json::num(*id as f64)),
                    ("cmd", Json::str("swap")),
                    ("path", Json::str(path.clone())),
                ];
                push_model(&mut pairs, model);
                Json::obj(pairs)
            }
            Self::Info { id } => {
                Json::obj([("id", Json::num(*id as f64)), ("cmd", Json::str("info"))])
            }
            Self::Shutdown { id } => Json::obj([
                ("id", Json::num(*id as f64)),
                ("cmd", Json::str("shutdown")),
            ]),
        }
    }

    /// Decodes one request frame. Structural problems (bad JSON shape,
    /// unknown command, non-numeric points) are `parse` errors; the
    /// caller layers semantic validation (width, NaN, limits) on top.
    pub fn from_json(doc: &Json) -> Result<Self, ServeError> {
        let id = match doc.get("id") {
            None => 0,
            Some(v) => small_uint(v)
                .ok_or_else(|| ServeError::parse("'id' must be a small non-negative integer"))?,
        };
        let cmd = doc
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| ServeError::parse("missing string field 'cmd'"))?;
        let get_usize = |key: &str, default: Option<usize>| -> Result<usize, ServeError> {
            match doc.get(key) {
                None => default
                    .ok_or_else(|| ServeError::parse(format!("missing numeric field '{key}'"))),
                Some(v) => small_uint(v).map(|x| x as usize).ok_or_else(|| {
                    ServeError::parse(format!("'{key}' must be a non-negative integer"))
                }),
            }
        };
        match cmd {
            "predict_batch" => {
                let m = get_usize("m", None)?;
                let arr = doc
                    .get("points")
                    .and_then(Json::as_array)
                    .ok_or_else(|| ServeError::parse("'points' must be an array of numbers"))?;
                let mut points = Vec::with_capacity(arr.len());
                for (i, v) in arr.iter().enumerate() {
                    // Numbers, plus the "inf"/"-inf"/"nan" markers the
                    // writer side emits for non-finite coordinates.
                    points.push(reds_metamodel::persist::f64_from_json(v).map_err(|_| {
                        ServeError::parse(format!(
                            "points[{i}] must be a number (or \"inf\"/\"-inf\"/\"nan\")"
                        ))
                    })?);
                }
                Ok(Self::PredictBatch {
                    id,
                    points,
                    m,
                    model: decode_model(doc)?,
                })
            }
            "discover" => {
                let params = DiscoverParams {
                    l: get_usize("l", Some(DiscoverParams::default().l))?,
                    seed: decode_seed(doc)?.unwrap_or(0),
                    algorithm: decode_algorithm(doc)?,
                    bnd: decode_bnd(doc)?,
                };
                Ok(Self::Discover {
                    id,
                    params,
                    model: decode_model(doc)?,
                })
            }
            "discover_streaming" => {
                let chunk_rows = get_usize("chunk_rows", Some(0))?;
                if chunk_rows == 0 && doc.get("chunk_rows").is_some() {
                    // An explicit 0 is almost certainly a client bug
                    // (a miscomputed chunk size); silently substituting
                    // the server default would mask it.
                    return Err(ServeError::bad_request(
                        "'chunk_rows' must be positive; omit the field for the server default",
                    ));
                }
                let params = StreamDiscoverParams {
                    l: get_usize("l", Some(StreamDiscoverParams::default().l))?,
                    // `None` (field absent) = the artifact's pool seed.
                    seed: decode_seed(doc)?,
                    algorithm: decode_algorithm(doc)?,
                    bnd: decode_bnd(doc)?,
                    chunk_rows,
                    ooc: decode_ooc(doc)?,
                };
                Ok(Self::DiscoverStreaming {
                    id,
                    params,
                    model: decode_model(doc)?,
                })
            }
            "swap" => {
                let path = doc
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ServeError::parse("missing string field 'path'"))?;
                if path.is_empty() {
                    return Err(ServeError::parse("'path' must be non-empty"));
                }
                Ok(Self::Swap {
                    id,
                    model: decode_model(doc)?,
                    path: path.to_string(),
                })
            }
            "info" => Ok(Self::Info { id }),
            "shutdown" => Ok(Self::Shutdown { id }),
            other => Err(ServeError::parse(format!(
                "unknown command '{other}' (expected predict_batch, discover, \
                 discover_streaming, swap, info, shutdown)"
            ))),
        }
    }
}

/// Decodes the optional `model` field (`None` = the default model).
fn decode_model(doc: &Json) -> Result<Option<String>, ServeError> {
    match doc.get("model") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(name) if !name.is_empty() => Ok(Some(name.to_string())),
            _ => Err(ServeError::parse("'model' must be a non-empty string")),
        },
    }
}

/// Decodes the optional `seed` field (`None` when absent).
fn decode_seed(doc: &Json) -> Result<Option<u64>, ServeError> {
    match doc.get("seed") {
        None => Ok(None),
        // Accept both a JSON integer and the lossless decimal-string
        // form.
        Some(Json::Str(s)) => s
            .parse()
            .map(Some)
            .map_err(|_| ServeError::parse("'seed' must be a u64 (number or decimal string)")),
        // Numeric seeds above 2^53 would already have been rounded by
        // f64 parsing — rejecting them (instead of silently serving a
        // *different* seed) protects the "same seed, same boxes"
        // contract; the string form carries the full u64 range.
        Some(v) => v
            .as_f64()
            .filter(|x| *x >= 0.0 && x.fract() == 0.0 && *x <= (1u64 << 53) as f64)
            .map(|x| Some(x as u64))
            .ok_or_else(|| {
                ServeError::parse(
                    "'seed' must be a non-negative integer ≤ 2^53 \
                     (use the decimal-string form for larger seeds)",
                )
            }),
    }
}

/// Decodes the optional `algorithm` field (PRIM when absent).
fn decode_algorithm(doc: &Json) -> Result<Algorithm, ServeError> {
    match doc.get("algorithm").map(|v| v.as_str()) {
        None => Ok(Algorithm::Prim),
        Some(Some("prim")) => Ok(Algorithm::Prim),
        Some(Some("bi")) => Ok(Algorithm::BestInterval),
        Some(other) => Err(ServeError::bad_request(format!(
            "unknown algorithm {other:?} (expected \"prim\" or \"bi\")"
        ))),
    }
}

/// Decodes the optional `ooc` flag (`false` when absent).
fn decode_ooc(doc: &Json) -> Result<bool, ServeError> {
    match doc.get("ooc") {
        None => Ok(false),
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ServeError::parse("'ooc' must be a boolean")),
    }
}

/// Decodes the optional `bnd` field (0.5 when absent).
fn decode_bnd(doc: &Json) -> Result<f64, ServeError> {
    match doc.get("bnd") {
        None => Ok(0.5),
        Some(v) => v
            .as_f64()
            .filter(|x| x.is_finite())
            .ok_or_else(|| ServeError::parse("'bnd' must be a finite number")),
    }
}

/// Decodes a small non-negative integer (`0..=u32::MAX`) from a JSON
/// number — the shared predicate behind request ids and count fields,
/// including the server's best-effort id extraction for error frames
/// (one definition keeps error correlation consistent with parsing).
pub fn small_uint(v: &Json) -> Option<u64> {
    v.as_f64()
        .filter(|x| *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64)
        .map(|x| x as u64)
}

/// Builds a success response frame.
pub fn ok_response(id: u64, result: Json) -> Json {
    Json::obj([
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(true)),
        ("result", result),
    ])
}

/// Builds an error response frame.
pub fn error_response(id: u64, error: &ServeError) -> Json {
    Json::obj([
        ("id", Json::num(id as f64)),
        ("ok", Json::Bool(false)),
        (
            "error",
            Json::obj([
                ("code", Json::str(error.code.as_str())),
                ("message", Json::str(error.message.clone())),
            ]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_format() {
        let reqs = [
            Request::PredictBatch {
                id: 7,
                points: vec![0.25, 0.5, 0.75, 1.0],
                m: 2,
                model: None,
            },
            Request::PredictBatch {
                id: 13,
                points: vec![0.25, 0.5],
                m: 2,
                model: Some("champion".to_string()),
            },
            Request::Discover {
                id: 8,
                params: DiscoverParams {
                    l: 5_000,
                    seed: u64::MAX - 1,
                    algorithm: Algorithm::BestInterval,
                    bnd: 0.25,
                },
                model: Some("challenger".to_string()),
            },
            Request::DiscoverStreaming {
                id: 11,
                params: StreamDiscoverParams {
                    l: 2_000_000,
                    seed: Some(u64::MAX - 2),
                    algorithm: Algorithm::Prim,
                    bnd: 0.5,
                    chunk_rows: 65_536,
                    ooc: false,
                },
                model: None,
            },
            Request::DiscoverStreaming {
                id: 12,
                params: StreamDiscoverParams {
                    seed: None, // "use the artifact's pool seed"
                    ..StreamDiscoverParams::default()
                },
                model: None,
            },
            Request::DiscoverStreaming {
                id: 16,
                params: StreamDiscoverParams {
                    l: 50_000,
                    ooc: true, // chunk_rows 0 travels as an absent field
                    ..StreamDiscoverParams::default()
                },
                model: Some("champion".to_string()),
            },
            Request::Swap {
                id: 14,
                model: Some("champion".to_string()),
                path: "/models/next.redsart".to_string(),
            },
            Request::Swap {
                id: 15,
                model: None,
                path: "model.json".to_string(),
            },
            Request::Info { id: 9 },
            Request::Shutdown { id: 10 },
        ];
        for req in reqs {
            let text = req.to_json().to_string_compact();
            let doc = reds_json::from_str(&text).expect("request serializes to valid JSON");
            assert_eq!(Request::from_json(&doc).expect("decodes"), req, "{text}");
        }
    }

    #[test]
    fn non_finite_points_travel_as_marker_strings() {
        // ±∞ coordinates are legal inputs (datasets allow them), so the
        // wire format must carry them — and a NaN must arrive as a real
        // NaN so the boundary check can report its row and column.
        let req = Request::PredictBatch {
            id: 1,
            points: vec![f64::INFINITY, 0.5, f64::NEG_INFINITY, 1.0],
            m: 2,
            model: None,
        };
        let text = req.to_json().to_string_compact();
        assert!(
            text.contains("\"inf\"") && text.contains("\"-inf\""),
            "{text}"
        );
        let back = Request::from_json(&reds_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back, req);
        let doc =
            reds_json::from_str(r#"{"cmd":"predict_batch","m":2,"points":[0.5,"nan"]}"#).unwrap();
        let Request::PredictBatch { points, .. } = Request::from_json(&doc).unwrap() else {
            panic!("wrong variant");
        };
        assert!(points[1].is_nan());
    }

    #[test]
    fn malformed_requests_are_parse_errors() {
        for (text, expect) in [
            (r#"{"cmd":"predict_batch"}"#, "m"),
            (r#"{"cmd":"predict_batch","m":2,"points":"zzz"}"#, "points"),
            (
                r#"{"cmd":"predict_batch","m":2,"points":[1,null]}"#,
                "points[1]",
            ),
            (r#"{"cmd":"nope"}"#, "unknown command"),
            (r#"{"id":-4,"cmd":"info"}"#, "id"),
            (r#"{"points":[1]}"#, "cmd"),
            (r#"{"cmd":"discover","seed":1.5}"#, "seed"),
            // Above 2^53, f64 parsing has already rounded the value; a
            // silently different seed would break reproducibility.
            (r#"{"cmd":"discover","seed":9007199254740994}"#, "seed"),
            (r#"{"cmd":"discover","seed":1e300}"#, "seed"),
            (r#"{"cmd":"discover","bnd":"x"}"#, "bnd"),
            (r#"{"cmd":"discover_streaming","ooc":1}"#, "ooc"),
            (
                r#"{"cmd":"predict_batch","m":2,"points":[],"model":7}"#,
                "model",
            ),
            (r#"{"cmd":"discover","model":""}"#, "model"),
            (r#"{"cmd":"swap"}"#, "path"),
            (r#"{"cmd":"swap","path":""}"#, "path"),
        ] {
            let doc = reds_json::from_str(text).expect("valid JSON");
            let err = Request::from_json(&doc).expect_err(text);
            assert_eq!(err.code, ErrorCode::Parse, "{text}");
            assert!(err.message.contains(expect), "{text} → {}", err.message);
        }
        // Unknown algorithm is semantic, not structural.
        let doc = reds_json::from_str(r#"{"cmd":"discover","algorithm":"xgboost"}"#).unwrap();
        assert_eq!(
            Request::from_json(&doc).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn explicit_zero_chunk_rows_is_a_bad_request() {
        // The typed default (chunk_rows = 0 = "server default") must
        // stay decodable when the field is simply absent …
        let doc = reds_json::from_str(r#"{"cmd":"discover_streaming","l":100}"#).unwrap();
        let Request::DiscoverStreaming { params, .. } = Request::from_json(&doc).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(params.chunk_rows, 0);
        assert!(!params.ooc);
        // … but a client explicitly sending 0 gets a structured
        // rejection instead of a silent substitution.
        let doc =
            reds_json::from_str(r#"{"cmd":"discover_streaming","l":100,"chunk_rows":0}"#).unwrap();
        let err = Request::from_json(&doc).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("chunk_rows"), "{}", err.message);
        assert!(err.message.contains("omit"), "{}", err.message);
    }

    #[test]
    fn response_builders_emit_the_documented_shape() {
        let ok = ok_response(3, Json::obj([("x", Json::num(1.0))]));
        assert_eq!(ok.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(ok.get("id").and_then(Json::as_f64), Some(3.0));
        let err = error_response(4, &ServeError::bad_request("boom"));
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            err.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
    }
}
