//! Event-driven connection core: a poll/epoll reactor replacing the
//! thread-per-connection accept loop.
//!
//! One reactor thread owns every socket. It multiplexes readiness with
//! `epoll(7)` on Linux (`poll(2)` elsewhere — both via direct FFI, the
//! same no-libc-crate pattern as the mmap bindings in `reds-art`),
//! feeds raw bytes through the shared [`wire::FrameBuffer`] framing,
//! and hands complete frames to a small executor pool. Replies flow
//! back over an in-memory bus plus a socketpair wakeup, and are
//! re-sequenced per connection before writing, so a client that
//! pipelines requests still receives answers strictly in request
//! order — bit-compatible with the old sequential handler.
//!
//! The boundary semantics are unchanged from the threaded server:
//!
//! * admission control happens at accept time (`too_busy` frame, then
//!   close) under the same `max_connections` cap and message;
//! * an oversized frame is answered once (`too_large`), the rest of
//!   the over-long line is drained (bounded) so the error survives the
//!   peer's send buffer, and the connection closes;
//! * empty lines are skipped, torn trailing lines at EOF are served,
//!   and a handler panic is a structured `internal` error, never a
//!   dead server.
//!
//! What scales differently: idle connections cost a registry entry
//! instead of a parked thread, and per-connection pipelining is capped
//! ([`PIPELINE_CAP`]) by pausing read interest instead of blocking a
//! thread.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use reds_json::Json;

use crate::protocol::{error_response, ServeError, ServeLimits};
use crate::wire::{FrameBuffer, FrameEvent};

use self::sys::Poller;

/// How long one poller wait may block; bounds shutdown-flag latency
/// exactly like the old per-connection read timeout did.
const TICK: Duration = Duration::from_millis(100);

/// Requests one connection may have dispatched-but-unanswered before
/// the reactor pauses reading from it (backpressure on pipelining
/// abuse; normal request/response clients never hit it).
const PIPELINE_CAP: usize = 32;

/// Read buffer size per `read(2)` call.
const READ_CHUNK: usize = 64 * 1024;

/// How long a draining server waits for in-flight requests before
/// force-closing their connections.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Something that turns one request line into one response frame.
///
/// Implemented by [`crate::server::Service`] (a model registry behind
/// the full command set) and [`crate::router::Router`] (a shard
/// fan-out). The returned flag requests server shutdown after the
/// response is flushed.
pub trait FrameHandler: Send + Sync + 'static {
    /// Serves one request line; returns the response document and
    /// whether the server should shut down once it is delivered.
    fn handle_frame(&self, line: &str) -> (Json, bool);
}

/// Connection gauges the `info` command reports; shared between the
/// reactor (which maintains them) and the handler (which reads them).
#[derive(Debug, Default)]
pub struct ConnGauges {
    /// Connections accepted since startup (admitted or not).
    pub connections: AtomicU64,
    /// Connections currently being served.
    pub active_connections: AtomicUsize,
    /// Connections turned away with `too_busy` at the admission gate.
    pub rejected_connections: AtomicU64,
}

/// Wakes the reactor from its poll wait (one byte down a socketpair).
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    fn wake(&self) {
        // A full pipe already guarantees a pending wakeup; all other
        // errors mean the reactor is gone. Either way: best effort.
        let _ = (&*self.tx).write(&[1u8]);
    }

    pub(crate) fn nudge(&self) {
        self.wake();
    }
}

struct WorkItem {
    token: u64,
    seq: u64,
    line: Vec<u8>,
}

struct WorkState {
    queue: VecDeque<WorkItem>,
    closed: bool,
}

struct WorkQueue {
    state: Mutex<WorkState>,
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(WorkState {
                queue: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        self.state
            .lock()
            .expect("work queue poisoned")
            .queue
            .push_back(item);
        self.ready.notify_one();
    }

    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().expect("work queue poisoned");
        loop {
            if let Some(item) = state.queue.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("work queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("work queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

struct Reply {
    token: u64,
    seq: u64,
    frame: Vec<u8>,
    shutdown: bool,
}

/// Executor → reactor reply bus.
struct ReplyBus {
    pending: Mutex<Vec<Reply>>,
}

impl ReplyBus {
    fn new() -> Self {
        Self {
            pending: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, reply: Reply) {
        self.pending.lock().expect("reply bus poisoned").push(reply);
    }

    fn drain(&self) -> Vec<Reply> {
        std::mem::take(&mut *self.pending.lock().expect("reply bus poisoned"))
    }
}

/// Per-connection state owned by the reactor thread.
struct Conn {
    stream: TcpStream,
    fb: FrameBuffer,
    /// Bytes queued for the peer; `out_pos` marks how much is written.
    out: Vec<u8>,
    out_pos: usize,
    /// Next sequence number to assign to an incoming frame.
    next_seq: u64,
    /// Sequence number the next emitted reply must carry — replies
    /// completing out of order park in `parked` until their turn.
    next_reply: u64,
    parked: BTreeMap<u64, (Vec<u8>, bool)>,
    /// Frames dispatched (or locally parked) but not yet emitted.
    in_flight: usize,
    /// No more reads or dispatches; finish replies, flush, close.
    read_closed: bool,
    /// Oversized frame seen: close once the discard completes and the
    /// error response is flushed.
    close_when_drained: bool,
    /// Read interest withdrawn because `in_flight` hit the cap.
    paused: bool,
    /// Interest bits currently registered with the poller.
    registered: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream, max_frame_bytes: usize) -> Self {
        Self {
            stream,
            fb: FrameBuffer::new(max_frame_bytes),
            out: Vec::new(),
            out_pos: 0,
            next_seq: 0,
            next_reply: 0,
            parked: BTreeMap::new(),
            in_flight: 0,
            read_closed: false,
            close_when_drained: false,
            paused: false,
            registered: (true, false),
        }
    }

    fn out_done(&self) -> bool {
        self.out_pos >= self.out.len()
    }

    fn wants_read(&self) -> bool {
        !self.read_closed && !self.paused
    }

    fn wants_write(&self) -> bool {
        !self.out_done()
    }

    /// `true` when nothing more will ever happen on this connection.
    fn finished(&self) -> bool {
        if !self.out_done() {
            return false;
        }
        if self.close_when_drained {
            // Oversized: the error (and every earlier reply) must be
            // emitted, and the discard must finish so the flushed error
            // is not destroyed by a reset — unless the drain budget ran
            // out (then `read_closed` is already set).
            return self.in_flight == 0 && (!self.fb.discarding() || self.read_closed);
        }
        self.read_closed && self.in_flight == 0
    }
}

const WAKE_TOKEN: u64 = 0;
const LISTENER_TOKEN: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

struct Reactor {
    poller: Poller,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    handler_work: Arc<WorkQueue>,
    replies: Arc<ReplyBus>,
    limits: ServeLimits,
    gauges: Arc<ConnGauges>,
    stop: Arc<AtomicBool>,
    draining: bool,
    drain_deadline: Instant,
    scratch: Vec<u8>,
}

impl Reactor {
    fn run(&mut self) -> io::Result<()> {
        let mut events = Vec::new();
        loop {
            self.poller.wait(&mut events, TICK)?;
            for ev in events.drain(..) {
                match ev.token {
                    WAKE_TOKEN => self.drain_wake_pipe(),
                    LISTENER_TOKEN => self.accept_ready(),
                    token => {
                        if ev.writable {
                            self.flush(token);
                        }
                        if ev.readable {
                            self.read_ready(token);
                        }
                    }
                }
            }
            self.pump_replies();
            if self.stop.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            if self.draining {
                let expired = Instant::now() >= self.drain_deadline;
                if expired {
                    let tokens: Vec<u64> = self.conns.keys().copied().collect();
                    for token in tokens {
                        self.close_conn(token);
                    }
                }
                if self.conns.is_empty() {
                    return Ok(());
                }
            }
        }
    }

    fn drain_wake_pipe(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept errors (aborted handshakes, fd
                // pressure): skip this readiness round.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        self.gauges.connections.fetch_add(1, Ordering::Relaxed);
        // Admission control: beyond `max_connections` concurrently
        // served sockets, answer with a structured `too_busy` frame and
        // close instead of registering the connection. Counted here so
        // a burst of accepts cannot race past the cap.
        let active = self.gauges.active_connections.load(Ordering::SeqCst);
        if self.draining || active >= self.limits.max_connections {
            self.gauges
                .rejected_connections
                .fetch_add(1, Ordering::Relaxed);
            let err = ServeError::too_busy(format!(
                "server is at its limit of {} concurrent connections; retry later",
                self.limits.max_connections
            ));
            // Accepted sockets are blocking; bound the courtesy write
            // so a peer that never reads cannot stall the reactor.
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
            let _ = crate::wire::write_frame(&mut stream, &error_response(0, &err));
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .add(stream.as_raw_fd(), token, true, false)
            .is_err()
        {
            return;
        }
        self.gauges
            .active_connections
            .fetch_add(1, Ordering::SeqCst);
        self.conns
            .insert(token, Conn::new(stream, self.limits.max_frame_bytes));
    }

    fn read_ready(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if !conn.wants_read() {
                break;
            }
            let n = match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    conn.read_closed = true;
                    // A torn trailing line (no newline before EOF) is
                    // still a frame, matching the blocking reader.
                    if let Some(line) = conn.fb.take_trailing() {
                        Self::dispatch(&self.handler_work, conn, token, line);
                    }
                    break;
                }
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token);
                    return;
                }
            };
            let chunk = std::mem::take(&mut self.scratch);
            self.feed(token, &chunk[..n]);
            self.scratch = chunk;
        }
        // Locally produced replies (the too_large error) park without
        // going through the executor bus; sequence them in here.
        if let Some(conn) = self.conns.get_mut(&token) {
            let _ = Self::advance(conn);
        }
        self.flush(token);
        self.after_progress(token);
    }

    /// Runs the framing state machine over freshly read bytes.
    fn feed(&mut self, token: u64, mut input: &[u8]) {
        let drain_budget = self.limits.max_frame_bytes.saturating_mul(8);
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        while !input.is_empty() && !conn.read_closed {
            let (used, event) = conn.fb.push(input);
            input = &input[used..];
            match event {
                Some(FrameEvent::Frame(line)) => {
                    if line.iter().all(|b| b.is_ascii_whitespace()) {
                        continue; // blank lines are ignored, not errors
                    }
                    Self::dispatch(&self.handler_work, conn, token, line);
                    if conn.in_flight >= PIPELINE_CAP {
                        conn.paused = true;
                    }
                }
                Some(FrameEvent::TooLarge) => {
                    // Answer once, then drain the rest of the over-long
                    // line before closing — the peer is typically still
                    // blocked writing it, and closing with unread data
                    // in the receive buffer resets the connection,
                    // destroying this very error response.
                    let err = ServeError::too_large(format!(
                        "frame exceeds {} bytes",
                        self.limits.max_frame_bytes
                    ));
                    let frame = error_response(0, &err).to_string_compact().into_bytes();
                    let seq = conn.next_seq;
                    conn.next_seq += 1;
                    conn.in_flight += 1;
                    conn.parked.insert(seq, (frame, false));
                    conn.close_when_drained = true;
                }
                Some(FrameEvent::DrainEnd) => {
                    // The rejected line ended; nothing after it is
                    // served (the old reader closed here too).
                    conn.read_closed = true;
                }
                None => {}
            }
            if conn.fb.discarding() && conn.fb.discarded() > drain_budget {
                // An endless line cannot pin the connection.
                conn.read_closed = true;
            }
        }
    }

    fn dispatch(work: &WorkQueue, conn: &mut Conn, token: u64, line: Vec<u8>) {
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.in_flight += 1;
        work.push(WorkItem { token, seq, line });
    }

    fn pump_replies(&mut self) {
        let mut request_stop = false;
        for reply in self.replies.drain() {
            let Some(conn) = self.conns.get_mut(&reply.token) else {
                continue; // connection died while the request ran
            };
            conn.parked.insert(reply.seq, (reply.frame, reply.shutdown));
            if Self::advance(conn) {
                request_stop = true;
            }
            self.flush(reply.token);
            self.after_progress(reply.token);
        }
        if request_stop {
            self.stop.store(true, Ordering::SeqCst);
        }
    }

    /// Emits parked replies in sequence order; returns whether one of
    /// them requested server shutdown.
    fn advance(conn: &mut Conn) -> bool {
        let mut request_stop = false;
        while let Some((frame, shutdown)) = conn.parked.remove(&conn.next_reply) {
            conn.next_reply += 1;
            conn.in_flight -= 1;
            conn.out.extend_from_slice(&frame);
            conn.out.push(b'\n');
            if shutdown {
                conn.read_closed = true;
                request_stop = true;
            }
        }
        if conn.paused && conn.in_flight < PIPELINE_CAP {
            conn.paused = false;
        }
        request_stop
    }

    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut dead = false;
        while !conn.out_done() {
            match conn.stream.write(&conn.out[conn.out_pos..]) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => conn.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        if dead {
            self.close_conn(token);
            return;
        }
        if let Some(conn) = self.conns.get_mut(&token) {
            if conn.out_done() {
                conn.out.clear();
                conn.out_pos = 0;
            }
        }
    }

    /// Re-registers poller interest and closes the connection if it is
    /// finished — called after every state change.
    fn after_progress(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.finished() {
            self.close_conn(token);
            return;
        }
        let want = (conn.wants_read(), conn.wants_write());
        if want != conn.registered {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want.0, want.1).is_ok() {
                conn.registered = want;
            }
        }
    }

    fn close_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.remove(conn.stream.as_raw_fd());
            self.gauges
                .active_connections
                .fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Stops accepting, stops reading, lets in-flight requests finish
    /// (bounded by [`DRAIN_DEADLINE`]), then the run loop exits.
    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Instant::now() + DRAIN_DEADLINE;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(listener.as_raw_fd());
            // Dropping the listener closes it: new connections are
            // refused from this point on.
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.read_closed = true;
            }
            self.after_progress(token);
        }
    }
}

/// Everything `ServerHandle` needs to control a running reactor.
pub(crate) struct ReactorParts {
    pub(crate) thread: std::thread::JoinHandle<()>,
    pub(crate) waker: Waker,
}

/// Spawns the reactor thread and its executor pool over an
/// already-bound listener.
pub(crate) fn spawn_reactor(
    listener: TcpListener,
    handler: Arc<dyn FrameHandler>,
    limits: ServeLimits,
    gauges: Arc<ConnGauges>,
    stop: Arc<AtomicBool>,
) -> io::Result<ReactorParts> {
    listener.set_nonblocking(true)?;
    let (wake_tx, wake_rx) = UnixStream::pair()?;
    wake_tx.set_nonblocking(true)?;
    wake_rx.set_nonblocking(true)?;
    let waker = Waker {
        tx: Arc::new(wake_tx),
    };

    let mut poller = Poller::new()?;
    poller.add(wake_rx.as_raw_fd(), WAKE_TOKEN, true, false)?;
    poller.add(listener.as_raw_fd(), LISTENER_TOKEN, true, false)?;

    let work = Arc::new(WorkQueue::new());
    let replies = Arc::new(ReplyBus::new());

    // Enough executors that the discover gate — not the pool — is the
    // concurrency limit, plus headroom for cheap requests to overtake
    // long discovers.
    let executors = (limits.max_active_discovers + 2).clamp(2, 16);
    let mut executor_threads = Vec::with_capacity(executors);
    for i in 0..executors {
        let work = Arc::clone(&work);
        let replies = Arc::clone(&replies);
        let handler = Arc::clone(&handler);
        let waker = waker.clone();
        executor_threads.push(
            std::thread::Builder::new()
                .name(format!("reds-exec-{i}"))
                .spawn(move || executor_loop(&work, handler.as_ref(), &replies, &waker))?,
        );
    }

    let mut reactor = Reactor {
        poller,
        listener: Some(listener),
        wake_rx,
        conns: HashMap::new(),
        next_token: FIRST_CONN_TOKEN,
        handler_work: Arc::clone(&work),
        replies,
        limits,
        gauges,
        stop,
        draining: false,
        drain_deadline: Instant::now(),
        scratch: vec![0u8; READ_CHUNK],
    };
    let thread = std::thread::Builder::new()
        .name("reds-reactor".to_string())
        .spawn(move || {
            if let Err(e) = reactor.run() {
                eprintln!("reds-serve reactor error: {e}");
            }
            drop(reactor); // close remaining sockets before the join
            work.close();
            for t in executor_threads {
                let _ = t.join();
            }
        })?;
    Ok(ReactorParts { thread, waker })
}

fn executor_loop(work: &WorkQueue, handler: &dyn FrameHandler, replies: &ReplyBus, waker: &Waker) {
    while let Some(item) = work.pop() {
        let text = String::from_utf8_lossy(&item.line);
        // Handlers already convert their own panics into structured
        // errors with the right request id; this outer net only exists
        // so a panic between those nets cannot kill an executor.
        let (response, shutdown) =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler.handle_frame(&text)))
                .unwrap_or_else(|_| {
                    let err = ServeError::internal("request handler panicked; see server log");
                    (error_response(0, &err), false)
                });
        replies.push(Reply {
            token: item.token,
            seq: item.seq,
            frame: response.to_string_compact().into_bytes(),
            shutdown,
        });
        waker.wake();
    }
}

/// Readiness event delivered by a [`Poller`] backend.
struct PollEvent {
    token: u64,
    readable: bool,
    writable: bool,
}

/// Name of the compiled-in readiness backend (reported by `info`).
pub fn poller_backend() -> &'static str {
    sys::BACKEND
}

#[cfg(target_os = "linux")]
mod sys {
    //! `epoll(7)` via direct FFI. std already links libc on unix
    //! targets, so declaring the handful of symbols we need avoids a
    //! libc crate dependency (the same pattern as `reds-art`'s mmap
    //! bindings).

    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    use super::PollEvent;

    pub(crate) const BACKEND: &str = "epoll";

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors `struct epoll_event`; packed on x86-64 only, exactly as
    /// the kernel ABI demands.
    #[derive(Clone, Copy)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    fn interest(read: bool, write: bool) -> u32 {
        let mut bits = 0;
        if read {
            bits |= EPOLLIN;
        }
        if write {
            bits |= EPOLLOUT;
        }
        bits
    }

    pub(crate) struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&self, op: i32, fd: RawFd, event: *mut EpollEvent) -> io::Result<()> {
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(crate) fn add(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest(read, write),
                data: token,
            };
            self.ctl(EPOLL_CTL_ADD, fd, &mut ev)
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest(read, write),
                data: token,
            };
            self.ctl(EPOLL_CTL_MOD, fd, &mut ev)
        }

        pub(crate) fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, std::ptr::null_mut())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Duration,
        ) -> io::Result<()> {
            const MAX_EVENTS: usize = 128;
            let mut raw = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    raw.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout.as_millis() as i32,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            out.clear();
            for ev in raw.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let token = ev.data;
                out.push(PollEvent {
                    token,
                    // HUP/ERR surface as readability so the read path
                    // observes the EOF / error directly.
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
mod sys {
    //! Portable `poll(2)` fallback for non-Linux unix targets, same
    //! direct-FFI pattern as the epoll backend.

    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    use super::PollEvent;

    pub(crate) const BACKEND: &str = "poll";

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: RawFd,
        events: i16,
        revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: i32) -> i32;
    }

    fn interest(read: bool, write: bool) -> i16 {
        let mut bits = 0;
        if read {
            bits |= POLLIN;
        }
        if write {
            bits |= POLLOUT;
        }
        bits
    }

    pub(crate) struct Poller {
        /// (fd, token, interest-bits) registrations.
        entries: Vec<(RawFd, u64, i16)>,
    }

    impl Poller {
        pub(crate) fn new() -> io::Result<Self> {
            Ok(Self {
                entries: Vec::new(),
            })
        }

        pub(crate) fn add(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            self.entries.push((fd, token, interest(read, write)));
            Ok(())
        }

        pub(crate) fn modify(
            &mut self,
            fd: RawFd,
            token: u64,
            read: bool,
            write: bool,
        ) -> io::Result<()> {
            for entry in &mut self.entries {
                if entry.0 == fd {
                    entry.1 = token;
                    entry.2 = interest(read, write);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub(crate) fn remove(&mut self, fd: RawFd) -> io::Result<()> {
            self.entries.retain(|entry| entry.0 != fd);
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Duration,
        ) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, events)| PollFd {
                    fd,
                    events,
                    revents: 0,
                })
                .collect();
            let n = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as u32,
                    timeout.as_millis() as i32,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            out.clear();
            for (pollfd, &(_, token, _)) in fds.iter().zip(&self.entries) {
                let bits = pollfd.revents;
                if bits == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token,
                    readable: bits & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: bits & (POLLOUT | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}
