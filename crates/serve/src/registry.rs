//! Versioned, hot-swappable model registry.
//!
//! The registry generalizes the server's single `ModelArtifact` into a
//! named collection of independently versioned models. Each model name
//! owns:
//!
//! * a **version slot** — an `Arc<ModelVersion>` behind an `RwLock`.
//!   Requests pin the version they will answer with by cloning the
//!   `Arc`; a swap replaces the slot's `Arc` and the old version stays
//!   alive (its mmap stays mapped) exactly until the last in-flight
//!   request drops its pin. Drain-before-unmap is therefore structural:
//!   the `Arc` refcount *is* the in-flight ledger.
//! * a **bounded micro-batch queue** ([`crate::batch::BatchQueue`]) —
//!   per-model admission control, so one saturated model backpressures
//!   its own callers with `too_busy` instead of starving the rest.
//!
//! A swap is load → flip → drain: the new artifact is fully loaded and
//! validated *before* the slot flips (a bad artifact never interrupts
//! service), the flip is a single pointer store under the write lock
//! (no request ever observes a half-installed model), and the swap
//! call then waits — bounded by `ServeLimits::swap_drain_ms` — for the
//! old version's refcount to hit one so the caller learns whether the
//! previous mapping was released. Versions are per-model, monotonic,
//! and start at 1.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use reds_json::Json;
use reds_metamodel::Metamodel;

use crate::artifact::ModelArtifact;
use crate::batch::{BatchQueue, BatchStats};
use crate::protocol::{ServeError, ServeLimits};

/// The model name requests without an explicit `"model"` field hit,
/// and the name the `--model` startup artifact is registered under.
pub const DEFAULT_MODEL: &str = "default";

/// Test shim slotted into a [`ModelVersion`]: called before the real
/// model on every batch, it may block (to hold a version in flight),
/// panic (to exercise worker survival), or return `Some(predictions)`
/// to override the model entirely.
#[doc(hidden)]
pub type PredictShim = Box<dyn Fn(&[f64], usize) -> Option<Vec<f64>> + Send + Sync>;

/// One immutable installed version of a model: the artifact plus its
/// per-model version number. Requests hold these via `Arc` for exactly
/// as long as they compute with the model, which is what makes
/// drain-before-unmap a refcount property rather than a protocol.
pub struct ModelVersion {
    /// Monotonic per-model version, starting at 1.
    pub version: u64,
    /// The loaded artifact this version serves.
    pub artifact: ModelArtifact,
    shim: Option<PredictShim>,
}

impl ModelVersion {
    /// Wraps a loaded artifact as version `version`.
    pub fn new(version: u64, artifact: ModelArtifact) -> Self {
        Self {
            version,
            artifact,
            shim: None,
        }
    }

    /// A version whose predictions can be intercepted by `shim` —
    /// test instrumentation for blocking/panicking/misbehaving models.
    #[doc(hidden)]
    pub fn with_shim(version: u64, artifact: ModelArtifact, shim: PredictShim) -> Self {
        Self {
            version,
            artifact,
            shim: Some(shim),
        }
    }

    /// Number of input columns this version's model expects.
    pub fn m(&self) -> usize {
        self.artifact.model.m()
    }

    /// Predicts a row-major batch with this pinned version.
    pub fn predict_batch(&self, points: &[f64], m: usize) -> Vec<f64> {
        if let Some(shim) = &self.shim {
            if let Some(preds) = shim(points, m) {
                return preds;
            }
        }
        self.artifact.model.predict_batch(points, m)
    }
}

/// The slot a model's current version lives in, shared between the
/// entry (which swaps it) and the batch worker (which pins it once per
/// batch — the single read that guarantees no mixed-version batches).
#[derive(Clone)]
pub(crate) struct VersionSlot {
    current: Arc<RwLock<Arc<ModelVersion>>>,
}

impl VersionSlot {
    fn new(version: Arc<ModelVersion>) -> Self {
        Self {
            current: Arc::new(RwLock::new(version)),
        }
    }

    pub(crate) fn pin(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.current.read().expect("version slot poisoned"))
    }

    fn replace(&self, next: Arc<ModelVersion>) -> Arc<ModelVersion> {
        let mut slot = self.current.write().expect("version slot poisoned");
        std::mem::replace(&mut *slot, next)
    }
}

/// What a completed swap reports back over the wire.
#[derive(Debug)]
pub struct SwapOutcome {
    /// Name of the swapped model.
    pub model: String,
    /// Version now serving.
    pub version: u64,
    /// Version that was serving before (0 when the swap created the
    /// entry).
    pub previous: u64,
    /// Whether every in-flight request against the old version
    /// finished (releasing its mapping) within the drain window.
    pub drained: bool,
    /// How long the drain wait took.
    pub drain_wait: Duration,
    /// Whether this swap created a new registry entry instead of
    /// replacing a version.
    pub created: bool,
}

impl SwapOutcome {
    /// Wire encoding for the `swap` response.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("model", Json::str(&self.model)),
            ("version", Json::num(self.version as f64)),
            ("previous", Json::num(self.previous as f64)),
            ("drained", Json::Bool(self.drained)),
            (
                "drain_wait_ms",
                Json::num(self.drain_wait.as_millis() as f64),
            ),
            ("created", Json::Bool(self.created)),
        ])
    }
}

/// One named model: its version slot, its bounded micro-batch queue,
/// and its counters.
pub struct ModelEntry {
    name: String,
    m: usize,
    slot: VersionSlot,
    queue: BatchQueue,
    next_version: AtomicU64,
    swaps: AtomicU64,
    active_discovers: AtomicUsize,
}

impl ModelEntry {
    fn new(name: &str, artifact: ModelArtifact, queue_depth: usize) -> Self {
        let m = artifact.model.m();
        let slot = VersionSlot::new(Arc::new(ModelVersion::new(1, artifact)));
        let queue = BatchQueue::spawn(name, slot.clone(), m, queue_depth);
        Self {
            name: name.to_string(),
            m,
            slot,
            queue,
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
            active_discovers: AtomicUsize::new(0),
        }
    }

    /// The entry's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of input columns every version of this model expects
    /// (fixed per entry so coalesced batches stay well-formed).
    pub fn m(&self) -> usize {
        self.m
    }

    /// Pins the currently serving version.
    pub fn current(&self) -> Arc<ModelVersion> {
        self.slot.pin()
    }

    /// Swaps this entry to `artifact`, then waits up to `drain` for
    /// in-flight requests against the old version to finish.
    pub fn swap(
        &self,
        artifact: ModelArtifact,
        drain: Duration,
    ) -> Result<SwapOutcome, ServeError> {
        if artifact.model.m() != self.m {
            return Err(ServeError::bad_request(format!(
                "swap for model '{}' expects m = {}, artifact has m = {}",
                self.name,
                self.m,
                artifact.model.m()
            )));
        }
        let version = self.next_version.fetch_add(1, Ordering::SeqCst);
        let next = Arc::new(ModelVersion::new(version, artifact));
        Ok(self.install(next, drain))
    }

    /// Installs an already-constructed version (test instrumentation:
    /// lets a shimmed version enter the slot). The version counter is
    /// advanced past `next.version` so monotonicity survives.
    #[doc(hidden)]
    pub fn install_version(&self, next: Arc<ModelVersion>, drain: Duration) -> SwapOutcome {
        self.next_version
            .fetch_max(next.version + 1, Ordering::SeqCst);
        self.install(next, drain)
    }

    fn install(&self, next: Arc<ModelVersion>, drain: Duration) -> SwapOutcome {
        let version = next.version;
        let old = self.slot.replace(next);
        let previous = old.version;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        // Drain: the flip already happened, so no new request can pin
        // `old`; wait for the refcount to fall to ours. `old` is
        // dropped at the end of this scope either way — if stragglers
        // remain, the mapping is released when the last one finishes,
        // never before (drain-before-unmap).
        let started = Instant::now();
        let deadline = started + drain;
        let mut drained = Arc::strong_count(&old) == 1;
        while !drained && Instant::now() < deadline {
            std::thread::sleep(Duration::from_micros(500));
            drained = Arc::strong_count(&old) == 1;
        }
        SwapOutcome {
            model: self.name.clone(),
            version,
            previous,
            drained,
            drain_wait: started.elapsed(),
            created: false,
        }
    }

    /// Queues a validated row-major batch on this model's micro-batch
    /// queue; blocks for `(version, predictions)`.
    pub fn predict(&self, points: Vec<f64>) -> Result<(u64, Vec<f64>), ServeError> {
        self.queue.predict(points)
    }

    /// This model's queue counters.
    pub fn stats(&self) -> &BatchStats {
        self.queue.stats()
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// The queue's admission cap.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Completed swaps on this entry.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Discover requests currently computing against this model.
    pub fn active_discovers(&self) -> usize {
        self.active_discovers.load(Ordering::Relaxed)
    }

    pub(crate) fn discover_started(&self) {
        self.active_discovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn discover_finished(&self) {
        self.active_discovers.fetch_sub(1, Ordering::Relaxed);
    }

    /// Registry-state block the `info` command reports for this model.
    pub fn info(&self) -> Json {
        let current = self.current();
        let stats = self.stats();
        Json::obj([
            ("name", Json::str(&self.name)),
            ("family", Json::str(current.artifact.model.family())),
            ("format", Json::str(current.artifact.model.format().name())),
            ("m", Json::num(self.m as f64)),
            ("n_train", Json::num(current.artifact.train.n() as f64)),
            ("version", Json::num(current.version as f64)),
            ("swaps", Json::num(self.swap_count() as f64)),
            (
                "requests",
                Json::num(stats.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "batches",
                Json::num(stats.batches.load(Ordering::Relaxed) as f64),
            ),
            (
                "max_batched",
                Json::num(stats.max_batched.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected",
                Json::num(stats.rejected.load(Ordering::Relaxed) as f64),
            ),
            ("queue_depth", Json::num(self.queue_depth() as f64)),
            ("queue_capacity", Json::num(self.queue_capacity() as f64)),
            (
                "active_discovers",
                Json::num(self.active_discovers() as f64),
            ),
        ])
    }
}

/// The named, versioned model collection a server instance serves.
pub struct ModelRegistry {
    models: RwLock<BTreeMap<String, Arc<ModelEntry>>>,
    default_name: String,
    queue_depth: usize,
    max_models: usize,
    drain: Duration,
}

impl ModelRegistry {
    /// A registry serving `artifact` under [`DEFAULT_MODEL`].
    pub fn new(artifact: ModelArtifact, limits: &ServeLimits) -> Self {
        Self::with_default(DEFAULT_MODEL, artifact, limits)
    }

    /// A registry whose default model is registered under `name`.
    pub fn with_default(name: &str, artifact: ModelArtifact, limits: &ServeLimits) -> Self {
        let entry = Arc::new(ModelEntry::new(name, artifact, limits.queue_depth));
        let mut models = BTreeMap::new();
        models.insert(name.to_string(), entry);
        Self {
            models: RwLock::new(models),
            default_name: name.to_string(),
            queue_depth: limits.queue_depth,
            max_models: limits.max_models,
            drain: Duration::from_millis(limits.swap_drain_ms),
        }
    }

    /// The name unnamed requests resolve to.
    pub fn default_name(&self) -> &str {
        &self.default_name
    }

    /// The configured swap drain window.
    pub fn drain_window(&self) -> Duration {
        self.drain
    }

    /// Resolves a request's optional model name to its entry.
    pub fn get(&self, name: Option<&str>) -> Result<Arc<ModelEntry>, ServeError> {
        let name = name.unwrap_or(&self.default_name);
        self.models
            .read()
            .expect("registry poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::bad_request(format!("unknown model '{name}'")))
    }

    /// Registers `artifact` under `name` alongside the existing models.
    /// Fails if the name is taken or the registry is full.
    pub fn install(
        &self,
        name: &str,
        artifact: ModelArtifact,
    ) -> Result<Arc<ModelEntry>, ServeError> {
        if name.is_empty() {
            return Err(ServeError::bad_request("model name must be non-empty"));
        }
        let mut models = self.models.write().expect("registry poisoned");
        if models.contains_key(name) {
            return Err(ServeError::bad_request(format!(
                "model '{name}' is already registered"
            )));
        }
        if models.len() >= self.max_models {
            return Err(ServeError::bad_request(format!(
                "registry is at its limit of {} models",
                self.max_models
            )));
        }
        let entry = Arc::new(ModelEntry::new(name, artifact, self.queue_depth));
        models.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Hot-swaps `name` (default model when `None`) to `artifact`,
    /// creating the entry when the name is new.
    pub fn swap(
        &self,
        name: Option<&str>,
        artifact: ModelArtifact,
    ) -> Result<SwapOutcome, ServeError> {
        let name = name.unwrap_or(&self.default_name);
        let existing = self
            .models
            .read()
            .expect("registry poisoned")
            .get(name)
            .cloned();
        match existing {
            Some(entry) => entry.swap(artifact, self.drain),
            None => {
                let entry = self.install(name, artifact)?;
                Ok(SwapOutcome {
                    model: entry.name().to_string(),
                    version: 1,
                    previous: 0,
                    drained: true,
                    drain_wait: Duration::ZERO,
                    created: true,
                })
            }
        }
    }

    /// All entries, in name order.
    pub fn entries(&self) -> Vec<Arc<ModelEntry>> {
        self.models
            .read()
            .expect("registry poisoned")
            .values()
            .cloned()
            .collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().expect("registry poisoned").len()
    }

    /// Whether the registry has no models (never true in a server —
    /// construction requires an initial artifact).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The per-model registry-state array `info` reports.
    pub fn info(&self) -> Json {
        Json::Arr(self.entries().iter().map(|e| e.info()).collect())
    }
}
