//! The shard router: one front process fanning requests across worker
//! serving processes.
//!
//! The router is just another [`FrameHandler`] plugged into the same
//! reactor connection core as [`Service`](crate::server::Service) — a
//! client cannot tell a router from a single-process server by the
//! wire protocol. A logical `predict_batch` is split row-contiguously
//! across the shard workers, answered by each over NDJSON framing, and
//! reassembled **bit-identically**: the per-row kernels are
//! row-independent, the split preserves row order, and predictions are
//! re-concatenated as raw JSON values (never re-parsed through `f64`),
//! so the fanned answer equals the single-process answer byte for
//! byte.
//!
//! `discover` cannot be split (one SD run consumes the whole pseudo-
//! labelled sample), so it routes whole to one shard chosen by seed —
//! every shard serves the same artifact, so any shard's answer is the
//! canonical one. `swap` broadcasts so the fleet flips together; `info`
//! aggregates per-shard state.

use std::sync::Mutex;

use reds_json::Json;

use crate::client::{Client, ClientError};
use crate::protocol::{error_response, ok_response, Request, ServeError, ServeLimits};
use crate::reactor::{poller_backend, FrameHandler};
use crate::server::validate_points;

/// One worker serving process the router fans out to, with a small
/// pool of idle connections (one per concurrent executor in practice).
struct Shard {
    addr: String,
    pool: Mutex<Vec<Client>>,
}

/// A shard-routing front handler; serve it with
/// [`serve_handler`](crate::server::serve_handler).
pub struct Router {
    shards: Vec<Shard>,
    limits: ServeLimits,
    propagate_shutdown: bool,
}

impl Router {
    /// Builds a router over worker addresses. Connections are opened
    /// lazily per request and pooled, so workers may come up after the
    /// router does.
    pub fn new(addrs: Vec<String>, limits: ServeLimits) -> Self {
        assert!(!addrs.is_empty(), "router needs at least one shard");
        Self {
            shards: addrs
                .into_iter()
                .map(|addr| Shard {
                    addr,
                    pool: Mutex::new(Vec::new()),
                })
                .collect(),
            limits,
            propagate_shutdown: false,
        }
    }

    /// When enabled, a `shutdown` request to the router is broadcast
    /// (best-effort) to every shard before the router itself stops.
    pub fn propagate_shutdown(mut self, yes: bool) -> Self {
        self.propagate_shutdown = yes;
        self
    }

    /// Number of shard workers behind this router.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Checks a client out of shard `i`'s pool (connecting if the pool
    /// is dry), runs one call, and returns the client to the pool
    /// unless the transport failed.
    fn call_shard(&self, i: usize, request: &Request) -> Result<Json, ClientError> {
        let shard = &self.shards[i];
        let pooled = shard.pool.lock().expect("shard pool").pop();
        let mut client = match pooled {
            Some(c) => c,
            None => Client::connect(&*shard.addr)?,
        };
        let outcome = client.call(request);
        // A structured server error leaves the connection healthy (the
        // reply was framed normally); only transport-level failures
        // poison the pooled connection.
        if !matches!(
            outcome,
            Err(ClientError::Io(_)) | Err(ClientError::Timeout { .. })
        ) {
            shard.pool.lock().expect("shard pool").push(client);
        }
        outcome
    }

    /// Maps a shard call failure to the structured error the router
    /// answers with: shard-side errors keep their code, transport
    /// failures become `internal`.
    fn shard_error(&self, i: usize, e: ClientError) -> ServeError {
        match e {
            ClientError::Server { code, message } => {
                let message = format!("shard {i}: {message}");
                match code.as_str() {
                    "parse" => ServeError::parse(message),
                    "bad_request" => ServeError::bad_request(message),
                    "too_large" => ServeError::too_large(message),
                    "too_busy" => ServeError::too_busy(message),
                    _ => ServeError::internal(message),
                }
            }
            other => ServeError::internal(format!(
                "shard {i} ({}) failed: {other}",
                self.shards[i].addr
            )),
        }
    }

    /// Splits `rows` as evenly as possible across the shards while
    /// preserving order: shard `i` serves a contiguous run of
    /// `rows/S` rows, with the first `rows % S` shards taking one
    /// extra. Returns `(start_row, row_count)` per shard.
    fn split_rows(&self, rows: usize) -> Vec<(usize, usize)> {
        let s = self.shards.len();
        let base = rows / s;
        let extra = rows % s;
        let mut start = 0;
        (0..s)
            .map(|i| {
                let take = base + usize::from(i < extra);
                let span = (start, take);
                start += take;
                span
            })
            .collect()
    }

    fn predict_batch(
        &self,
        points: &[f64],
        m: usize,
        model: Option<&str>,
    ) -> Result<Json, ServeError> {
        // The router enforces the whole-request limits itself (with
        // `model_m = m`, since only the shards know the model width):
        // splitting first would let an oversized request slip through
        // as S under-limit shard requests.
        validate_points(points, m, m, &self.limits)?;
        let rows = points.len() / m;
        let spans = self.split_rows(rows);
        // Fan the shard calls out concurrently; each shard owns its
        // own connection pool, so the scope only shares `&self`.
        let outcomes: Vec<Option<Result<Json, ClientError>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = spans
                .iter()
                .enumerate()
                .map(|(i, &(start, take))| {
                    if take == 0 {
                        return None;
                    }
                    let request = Request::PredictBatch {
                        id: 1,
                        points: points[start * m..(start + take) * m].to_vec(),
                        m,
                        model: model.map(str::to_string),
                    };
                    Some(scope.spawn(move || self.call_shard(i, &request)))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("shard fan-out thread")))
                .collect()
        });
        let mut predictions = Vec::with_capacity(rows);
        let mut version = 0u64;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let Some(outcome) = outcome else { continue };
            let result = outcome.map_err(|e| self.shard_error(i, e))?;
            let part = result
                .get("predictions")
                .and_then(Json::as_array)
                .ok_or_else(|| {
                    ServeError::internal(format!("shard {i} answered without 'predictions'"))
                })?;
            // Concatenate the shard's prediction *values* verbatim —
            // no f64 round-trip, so the reassembled reply is the exact
            // bytes a single-process server would have sent.
            predictions.extend(part.iter().cloned());
            let v = result.get("version").and_then(Json::as_f64).unwrap_or(0.0) as u64;
            version = version.max(v);
        }
        Ok(Json::obj([
            ("predictions", Json::Arr(predictions)),
            ("version", Json::num(version as f64)),
        ]))
    }

    /// Routes a whole request to the shard picked by `seed` — discover
    /// runs are indivisible, and every shard serves the same artifact.
    fn route_whole(&self, seed: u64, request: &Request) -> Result<Json, ServeError> {
        let i = (seed % self.shards.len() as u64) as usize;
        self.call_shard(i, request)
            .map_err(|e| self.shard_error(i, e))
    }

    fn swap_all(&self, model: Option<&str>, path: &str) -> Result<Json, ServeError> {
        let mut outcomes = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let request = Request::Swap {
                id: 1,
                model: model.map(str::to_string),
                path: path.to_string(),
            };
            // A mid-broadcast failure leaves earlier shards on the new
            // version — surfaced as an error so the operator retries
            // until the whole fleet agrees.
            let outcome = self
                .call_shard(i, &request)
                .map_err(|e| self.shard_error(i, e))?;
            outcomes.push(outcome);
        }
        Ok(Json::obj([("shards", Json::Arr(outcomes))]))
    }

    fn info(&self) -> Result<Json, ServeError> {
        let mut infos = Vec::with_capacity(self.shards.len());
        for i in 0..self.shards.len() {
            let request = Request::Info { id: 1 };
            let info = self
                .call_shard(i, &request)
                .map_err(|e| self.shard_error(i, e))?;
            infos.push(info);
        }
        Ok(Json::obj([
            ("router", Json::Bool(true)),
            ("reactor", Json::str(poller_backend())),
            ("shards", Json::num(self.shards.len() as f64)),
            (
                "shard_addrs",
                Json::arr(self.shards.iter().map(|s| Json::str(s.addr.clone()))),
            ),
            ("shard_info", Json::Arr(infos)),
        ]))
    }

    fn dispatch(&self, request: Request) -> (Json, bool) {
        match request {
            Request::PredictBatch {
                id,
                points,
                m,
                model,
            } => match self.predict_batch(&points, m, model.as_deref()) {
                Ok(result) => (ok_response(id, result), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Discover {
                id,
                ref params,
                model: _,
            } => match self.route_whole(params.seed, &request) {
                Ok(result) => (ok_response(id, result), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::DiscoverStreaming {
                id,
                ref params,
                model: _,
            } => match self.route_whole(params.seed.unwrap_or(0), &request) {
                Ok(result) => (ok_response(id, result), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Swap { id, model, path } => match self.swap_all(model.as_deref(), &path) {
                Ok(result) => (ok_response(id, result), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Info { id } => match self.info() {
                Ok(result) => (ok_response(id, result), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Shutdown { id } => {
                if self.propagate_shutdown {
                    for i in 0..self.shards.len() {
                        let _ = self.call_shard(i, &Request::Shutdown { id: 1 });
                    }
                }
                (
                    ok_response(id, Json::obj([("shutdown", Json::Bool(true))])),
                    true,
                )
            }
        }
    }
}

impl FrameHandler for Router {
    fn handle_frame(&self, line: &str) -> (Json, bool) {
        let doc = match reds_json::from_str(line) {
            Ok(doc) => doc,
            Err(e) => return (error_response(0, &ServeError::parse(e.to_string())), false),
        };
        let id = doc
            .get("id")
            .and_then(crate::protocol::small_uint)
            .unwrap_or(0);
        let request = match Request::from_json(&doc) {
            Ok(r) => r,
            Err(e) => return (error_response(id, &e), false),
        };
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.dispatch(request)));
        match outcome {
            Ok(reply) => reply,
            Err(_) => (
                error_response(
                    id,
                    &ServeError::internal("request handler panicked; see server log"),
                ),
                false,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> Router {
        Router::new(
            (0..n)
                .map(|i| format!("127.0.0.1:{}", 50_000 + i))
                .collect(),
            ServeLimits::default(),
        )
    }

    #[test]
    fn split_rows_is_contiguous_balanced_and_ordered() {
        for shards in 1..=5usize {
            let r = router(shards);
            for rows in [0usize, 1, 2, 3, 7, 64, 1_000] {
                let spans = r.split_rows(rows);
                assert_eq!(spans.len(), shards);
                let mut next = 0;
                for &(start, take) in &spans {
                    assert_eq!(start, next, "contiguous, ordered");
                    next += take;
                }
                assert_eq!(next, rows, "every row assigned exactly once");
                let max = spans.iter().map(|s| s.1).max().unwrap();
                let min = spans.iter().map(|s| s.1).min().unwrap();
                assert!(max - min <= 1, "balanced: {spans:?}");
            }
        }
    }

    #[test]
    fn router_rejects_bad_requests_without_touching_shards() {
        // No shard listens on these addresses — validation must fail
        // first, proving limits are enforced at the front.
        let r = router(2);
        let err = r.predict_batch(&[1.0, 2.0, 3.0], 2, None).unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::BadRequest);
        let tight = Router::new(
            vec!["127.0.0.1:1".to_string()],
            ServeLimits {
                max_rows_per_request: 2,
                ..Default::default()
            },
        );
        let err = tight.predict_batch(&[0.0; 6], 2, None).unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::TooLarge);
    }

    #[test]
    fn unreachable_shards_surface_as_internal_errors() {
        let r = router(1);
        let err = r.predict_batch(&[0.5, 0.5], 2, None).unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::Internal);
        assert!(err.message.contains("shard 0"), "{}", err.message);
    }
}
