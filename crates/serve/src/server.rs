//! The serving front: request handling over the readiness reactor.
//!
//! One [`reactor`](crate::reactor) thread owns every socket; complete
//! frames are served by a small executor pool against a
//! [`ModelRegistry`] of independently versioned, hot-swappable models,
//! each with its own bounded micro-batch queue. Every request is
//! answered with a structured response — handler panics are caught and
//! converted to `internal` errors, so a serving process never dies on
//! a request.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::Dataset;
use reds_json::Json;
use reds_ooc::{OocConfig, OocPool};
use reds_subgroup::{BestInterval, Prim, SdResult, SubgroupDiscovery};

use reds_stream::{stream_art, stream_pool, Labeling, SamplerSource, StreamConfig, StreamSampler};

use crate::artifact::ModelArtifact;
use crate::protocol::{
    error_response, ok_response, Algorithm, DiscoverParams, Request, ServeError, ServeLimits,
    StreamDiscoverParams,
};
use crate::reactor::{poller_backend, spawn_reactor, ConnGauges, FrameHandler, Waker};
use crate::registry::{ModelEntry, ModelRegistry, SwapOutcome};

/// Validates a query buffer at the request boundary: declared width
/// must match the model, the buffer must tile into whole rows, no
/// coordinate may be NaN, and the row count must respect the limit.
///
/// The pipeline's `pseudo_label` performs the same checks for library
/// callers; repeating them here means a *served* request can never
/// reach the kernels with data the pipeline would have rejected.
pub fn validate_points(
    points: &[f64],
    m: usize,
    model_m: usize,
    limits: &ServeLimits,
) -> Result<(), ServeError> {
    if m != model_m {
        return Err(ServeError::bad_request(format!(
            "request declares m = {m} but the loaded model expects {model_m} columns"
        )));
    }
    if m == 0 || !points.len().is_multiple_of(m) {
        return Err(ServeError::bad_request(format!(
            "points buffer of {} values does not tile into rows of m = {m}",
            points.len()
        )));
    }
    if points.len() / m > limits.max_rows_per_request {
        return Err(ServeError::too_large(format!(
            "{} rows exceed the per-request limit of {}",
            points.len() / m,
            limits.max_rows_per_request
        )));
    }
    if let Some(at) = points.iter().position(|v| v.is_nan()) {
        return Err(ServeError::bad_request(format!(
            "NaN coordinate at row {}, column {}",
            at / m,
            at % m
        )));
    }
    Ok(())
}

/// Serves one `discover` request against an already-fitted metamodel:
/// pseudo-label `L` uniform points (Algorithm 4 lines 3–6 with the
/// loaded `f^am`), then run the chosen SD algorithm validated on the
/// artifact's original training data (`D_val = D`, §8.5).
///
/// `predict` abstracts over the direct model call (tests, offline use)
/// and the server's pinned registry version — both produce identical
/// bits, so served and in-process discovery agree exactly.
pub fn run_discover(
    predict: impl Fn(Vec<f64>) -> Result<Vec<f64>, ServeError>,
    m: usize,
    train: &Dataset,
    params: &DiscoverParams,
) -> Result<SdResult, ServeError> {
    if params.l == 0 {
        return Err(ServeError::bad_request("discover needs l > 0"));
    }
    let mut rng = StdRng::seed_from_u64(params.seed);
    let points = reds_sampling::uniform(params.l, m, &mut rng);
    let preds = predict(points.clone())?;
    let labels: Vec<f64> = preds
        .iter()
        .map(|&p| if p > params.bnd { 1.0 } else { 0.0 })
        .collect();
    let d_new = Dataset::new(points, labels, m)
        .map_err(|e| ServeError::internal(format!("pseudo-labelled sample invalid: {e}")))?;
    let mut sd_rng = StdRng::seed_from_u64(rng.gen());
    let result = match params.algorithm {
        Algorithm::Prim => Prim::default().discover(&d_new, train, &mut sd_rng),
        Algorithm::BestInterval => BestInterval::default().discover(&d_new, train, &mut sd_rng),
    };
    Ok(result)
}

/// Serves one `discover` request through the bounded-memory streaming
/// pipeline: the `L` uniform points are generated, pseudo-labeled, and
/// argsorted in chunks (spilled sort runs, k-way merge), and the
/// subgroup search consumes the merged order through
/// `discover_presorted`.
///
/// With the same resolved `params` this returns boxes **bit-identical**
/// to [`run_discover`]: the chunked draws replay the monolithic RNG
/// stream, `predict_batch` is per-row, and the merge reproduces the
/// in-memory sort order exactly.
pub fn run_discover_streaming(
    predict: impl Fn(Vec<f64>) -> Result<Vec<f64>, ServeError>,
    m: usize,
    train: &Dataset,
    params: &DiscoverParams,
    stream: &StreamConfig,
) -> Result<SdResult, ServeError> {
    if params.l == 0 {
        return Err(ServeError::bad_request("discover needs l > 0"));
    }
    let rng = StdRng::seed_from_u64(params.seed);
    let mut source = SamplerSource::new(StreamSampler::Uniform, params.l, m, rng);
    // The streaming layer transports predictor failures as strings;
    // capture the original typed error so the client still sees the
    // proper code (`internal` vs `too_large` …) instead of a re-wrap.
    let captured: std::cell::RefCell<Option<ServeError>> = std::cell::RefCell::new(None);
    let mut chunk_predict = |points: &[f64], _m: usize| {
        predict(points.to_vec()).map_err(|e| {
            let msg = e.to_string();
            *captured.borrow_mut() = Some(e);
            reds_stream::StreamError::Predict(msg)
        })
    };
    let outcome = stream_pool(
        &mut source,
        &mut chunk_predict,
        Labeling::Hard { bnd: params.bnd },
        stream,
    );
    let _ = chunk_predict;
    let pool = match outcome {
        Ok(pool) => pool,
        Err(e) => {
            return Err(captured.into_inner().unwrap_or_else(|| {
                ServeError::internal(format!("streaming pipeline failed: {e}"))
            }))
        }
    };
    let mut rng = source.into_rng();
    let mut sd_rng = StdRng::seed_from_u64(rng.gen());
    let result = match params.algorithm {
        Algorithm::Prim => {
            Prim::default().discover_presorted(&pool.dataset, pool.view, train, &mut sd_rng)
        }
        Algorithm::BestInterval => {
            BestInterval::default().discover_presorted(&pool.dataset, pool.view, train, &mut sd_rng)
        }
    };
    Ok(result)
}

/// A unique scratch path for a served out-of-core run's `.redsart`
/// artifact, under the stream config's spill directory (or the system
/// temp directory).
fn scratch_artifact_path(stream: &StreamConfig) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let parent = stream.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    parent.join(format!(
        "reds-serve-ooc-{}-{seq}.redsart",
        std::process::id()
    ))
}

/// Removes the scratch artifact when the run ends — success, error, or
/// panic alike (the discover executor's catch-unwind unwinds through
/// it).
struct ScratchFile(PathBuf);

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Serves one `discover` request **out of core**: the pseudo-labelled
/// pool streams straight into a scratch `.redsart` artifact (sorted,
/// paged, fenced columns — never materialized in memory), and the
/// subgroup search pages it back in through a bounded cache
/// (`reds-ooc`).
///
/// Boxes are **bit-identical** to [`run_discover`] and
/// [`run_discover_streaming`] with the same resolved `params`: the
/// paged search replays the exact floating-point visit order of the
/// in-memory path. The scratch artifact is removed when the run ends.
pub fn run_discover_streaming_ooc(
    predict: impl Fn(Vec<f64>) -> Result<Vec<f64>, ServeError>,
    m: usize,
    train: &Dataset,
    params: &DiscoverParams,
    stream: &StreamConfig,
    ooc: &OocConfig,
) -> Result<SdResult, ServeError> {
    if params.l == 0 {
        return Err(ServeError::bad_request("discover needs l > 0"));
    }
    let rng = StdRng::seed_from_u64(params.seed);
    let mut source = SamplerSource::new(StreamSampler::Uniform, params.l, m, rng);
    // Same typed-error capture as run_discover_streaming: the client
    // sees the predictor's original code, not a re-wrap.
    let captured: std::cell::RefCell<Option<ServeError>> = std::cell::RefCell::new(None);
    let mut chunk_predict = |points: &[f64], _m: usize| {
        predict(points.to_vec()).map_err(|e| {
            let msg = e.to_string();
            *captured.borrow_mut() = Some(e);
            reds_stream::StreamError::Predict(msg)
        })
    };
    let art_path = scratch_artifact_path(stream);
    if let Some(parent) = art_path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    let _guard = ScratchFile(art_path.clone());
    let outcome = stream_art(
        &mut source,
        &mut chunk_predict,
        Labeling::Hard { bnd: params.bnd },
        stream,
        &art_path,
        ooc.page_rows,
    );
    let _ = chunk_predict;
    if let Err(e) = outcome {
        return Err(captured
            .into_inner()
            .unwrap_or_else(|| ServeError::internal(format!("out-of-core pipeline failed: {e}"))));
    }
    let mut rng = source.into_rng();
    let mut sd_rng = StdRng::seed_from_u64(rng.gen());
    let mut pool = OocPool::open(&art_path, ooc)
        .map_err(|e| ServeError::internal(format!("cannot open scratch artifact: {e}")))?;
    let result = match params.algorithm {
        Algorithm::Prim => Prim::default().discover_paged(&mut pool, train, &mut sd_rng),
        Algorithm::BestInterval => {
            BestInterval::default().discover_paged(&mut pool, train, &mut sd_rng)
        }
    };
    drop(pool);
    result.ok_or_else(|| {
        ServeError::internal(format!(
            "algorithm \"{}\" has no out-of-core code path",
            params.algorithm.as_str()
        ))
    })
}

/// The request handler shared by every connection: a model registry,
/// the configured limits, and the server-wide gauges.
pub struct Service {
    registry: Arc<ModelRegistry>,
    limits: ServeLimits,
    gauges: Arc<ConnGauges>,
    active_discovers: AtomicUsize,
}

/// RAII slot in the discover gate (and the per-model discover gauge);
/// released even when the discover panics, because `handle_frame`'s
/// catch-unwind unwinds through it.
struct DiscoverSlot<'a> {
    service: &'a Service,
    entry: &'a ModelEntry,
}

impl Drop for DiscoverSlot<'_> {
    fn drop(&mut self) {
        self.service.active_discovers.fetch_sub(1, Ordering::SeqCst);
        self.entry.discover_finished();
    }
}

impl Service {
    /// Builds a single-model service: `artifact` becomes the default
    /// registry entry and its prediction worker spawns.
    pub fn new(artifact: ModelArtifact, limits: ServeLimits) -> Self {
        let registry = Arc::new(ModelRegistry::new(artifact, &limits));
        Self::with_registry(registry, limits)
    }

    /// Builds the service over an existing (possibly multi-model)
    /// registry.
    pub fn with_registry(registry: Arc<ModelRegistry>, limits: ServeLimits) -> Self {
        Self {
            registry,
            limits,
            gauges: Arc::new(ConnGauges::default()),
            active_discovers: AtomicUsize::new(0),
        }
    }

    /// The configured limits.
    pub fn limits(&self) -> &ServeLimits {
        &self.limits
    }

    /// The model registry this service answers from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// The connection gauges the reactor maintains for this service.
    pub fn gauges(&self) -> &Arc<ConnGauges> {
        &self.gauges
    }

    /// Validated prediction through the addressed model's micro-batch
    /// queue; returns the registry version that served the batch along
    /// with the predictions.
    pub fn predict(
        &self,
        points: Vec<f64>,
        m: usize,
        model: Option<&str>,
    ) -> Result<(u64, Vec<f64>), ServeError> {
        let entry = self.registry.get(model)?;
        validate_points(&points, m, entry.m(), &self.limits)?;
        entry.predict(points)
    }

    fn begin_discover<'a>(
        &'a self,
        entry: &'a Arc<ModelEntry>,
    ) -> Result<DiscoverSlot<'a>, ServeError> {
        let prev = self.active_discovers.fetch_add(1, Ordering::SeqCst);
        if prev >= self.limits.max_active_discovers {
            self.active_discovers.fetch_sub(1, Ordering::SeqCst);
            return Err(ServeError::too_busy(format!(
                "server is at its limit of {} concurrent discover requests; retry later",
                self.limits.max_active_discovers
            )));
        }
        entry.discover_started();
        Ok(DiscoverSlot {
            service: self,
            entry,
        })
    }

    /// Served scenario discovery (see [`run_discover`]); the whole run
    /// predicts against one pinned registry version, so a swap landing
    /// mid-run never mixes models inside a single result.
    pub fn discover(
        &self,
        params: &DiscoverParams,
        model: Option<&str>,
    ) -> Result<SdResult, ServeError> {
        if params.l > self.limits.max_discover_l {
            return Err(ServeError::too_large(format!(
                "l = {} exceeds the limit of {}",
                params.l, self.limits.max_discover_l
            )));
        }
        let entry = self.registry.get(model)?;
        let _slot = self.begin_discover(&entry)?;
        let version = entry.current();
        let m = entry.m();
        run_discover(
            |points| Ok(version.predict_batch(&points, m)),
            m,
            &version.artifact.train,
            params,
        )
    }

    /// Served streaming scenario discovery (see
    /// [`run_discover_streaming`]). A request without an explicit seed
    /// streams the pinned version's recorded `pool_seed`, so the run
    /// is reproducible from the artifact file alone.
    pub fn discover_streaming(
        &self,
        params: &StreamDiscoverParams,
        model: Option<&str>,
    ) -> Result<SdResult, ServeError> {
        if params.l > self.limits.max_discover_l {
            return Err(ServeError::too_large(format!(
                "l = {} exceeds the limit of {}",
                params.l, self.limits.max_discover_l
            )));
        }
        // A chunk above the largest admissible pool can never take
        // effect (chunks are clamped to l rows) — reject it as a
        // client bug rather than silently serving something else.
        if params.chunk_rows > self.limits.max_discover_l {
            return Err(ServeError::bad_request(format!(
                "chunk_rows = {} exceeds the discover limit of {} and cannot take effect",
                params.chunk_rows, self.limits.max_discover_l
            )));
        }
        let entry = self.registry.get(model)?;
        let _slot = self.begin_discover(&entry)?;
        let version = entry.current();
        let m = entry.m();
        let resolved = DiscoverParams {
            l: params.l,
            seed: params.seed.unwrap_or(version.artifact.pool_seed),
            algorithm: params.algorithm,
            bnd: params.bnd,
        };
        // The merge holds one open file + buffered reader per spilled
        // run, and runs = ⌈l / chunk_rows⌉ — a client asking for
        // chunk_rows = 1 at l = 10⁶ would exhaust the process's file
        // descriptors. Chunking never changes the result (bit-identity
        // holds for any chunk size), so the server is free to raise a
        // too-small chunk until the run count is bounded.
        const MAX_RUNS_PER_COLUMN: usize = 1_024;
        let requested = StreamConfig::new()
            .with_chunk_rows(params.chunk_rows)
            .effective_chunk_rows();
        let floor = params.l.div_ceil(MAX_RUNS_PER_COLUMN);
        let stream = StreamConfig::new().with_chunk_rows(requested.max(floor));
        if params.ooc {
            return run_discover_streaming_ooc(
                |points| Ok(version.predict_batch(&points, m)),
                m,
                &version.artifact.train,
                &resolved,
                &stream,
                &OocConfig::default(),
            );
        }
        run_discover_streaming(
            |points| Ok(version.predict_batch(&points, m)),
            m,
            &version.artifact.train,
            &resolved,
            &stream,
        )
    }

    /// Hot-swaps a registry model to the artifact at `path` (loaded and
    /// validated before the flip — a bad file never interrupts
    /// serving).
    pub fn swap(&self, model: Option<&str>, path: &str) -> Result<SwapOutcome, ServeError> {
        let artifact = ModelArtifact::load(Path::new(path)).map_err(|e| {
            ServeError::bad_request(format!("cannot load artifact from '{path}': {e}"))
        })?;
        self.registry.swap(model, artifact)
    }

    /// The `info` result object: the default model's fields at the top
    /// level (wire compatibility), the full registry under `"models"`.
    pub fn info(&self) -> Json {
        let entry = self
            .registry
            .get(None)
            .expect("registry always holds its default model");
        let current = entry.current();
        let stats = entry.stats();
        Json::obj([
            ("function", Json::str(current.artifact.function.clone())),
            ("family", Json::str(current.artifact.model.family())),
            // Which on-disk format the artifact came from: "reds-json"
            // (parsed) or "redsart" (memory-mapped, zero-copy).
            ("format", Json::str(current.artifact.format().name())),
            ("m", Json::num(entry.m() as f64)),
            ("n_train", Json::num(current.artifact.train.n() as f64)),
            ("seed", Json::str(current.artifact.seed.to_string())),
            (
                "pool_seed",
                Json::str(current.artifact.pool_seed.to_string()),
            ),
            (
                "pool_design",
                Json::str(current.artifact.pool_design.clone()),
            ),
            // The prediction-kernel backend every predict_batch under
            // this server dispatches to (scalar and avx2 answers are
            // bit-identical; this is operational visibility only).
            (
                "kernel",
                Json::str(reds_metamodel::kernels::active().name()),
            ),
            // The exp backend those kernels evaluate (`poly` unless the
            // REDS_EXP=libm escape hatch is active — unlike the kernel
            // field, this one *does* change low-order result bits, so
            // fleet operators need to see it).
            (
                "exp",
                Json::str(reds_metamodel::kernels::vexp::backend().name()),
            ),
            // The readiness backend the connection core multiplexes on.
            ("reactor", Json::str(poller_backend())),
            ("version", Json::num(current.version as f64)),
            (
                "requests",
                Json::num(stats.requests.load(Ordering::Relaxed) as f64),
            ),
            (
                "batches",
                Json::num(stats.batches.load(Ordering::Relaxed) as f64),
            ),
            (
                "max_batched",
                Json::num(stats.max_batched.load(Ordering::Relaxed) as f64),
            ),
            (
                "connections",
                Json::num(self.gauges.connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "active_connections",
                Json::num(self.gauges.active_connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "rejected_connections",
                Json::num(self.gauges.rejected_connections.load(Ordering::Relaxed) as f64),
            ),
            (
                "active_discovers",
                Json::num(self.active_discovers.load(Ordering::Relaxed) as f64),
            ),
            // Registry state: every loaded model with its format,
            // active version, swap count, and queue depth/capacity —
            // swaps and backpressure are observable from the wire.
            ("models", self.registry.info()),
        ])
    }

    /// Handles one raw frame. Returns the response and whether the
    /// frame asked the server to shut down. Never panics: handler
    /// panics become `internal` error responses carrying the request's
    /// id, so pipelining clients keep their response correlation.
    pub fn handle_frame(&self, line: &str) -> (Json, bool) {
        let doc = match reds_json::from_str(line) {
            Ok(doc) => doc,
            Err(e) => return (error_response(0, &ServeError::parse(e.to_string())), false),
        };
        // Pull the id out even when the rest of the request is bad, so
        // the client can correlate the failure.
        let id = doc
            .get("id")
            .and_then(crate::protocol::small_uint)
            .unwrap_or(0);
        let request = match Request::from_json(&doc) {
            Ok(r) => r,
            Err(e) => return (error_response(id, &e), false),
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| self.dispatch(request)));
        match outcome {
            Ok(reply) => reply,
            Err(_) => (
                error_response(
                    id,
                    &ServeError::internal("request handler panicked; see server log"),
                ),
                false,
            ),
        }
    }

    fn dispatch(&self, request: Request) -> (Json, bool) {
        match request {
            Request::PredictBatch {
                id,
                points,
                m,
                model,
            } => match self.predict(points, m, model.as_deref()) {
                Ok((version, preds)) => (
                    ok_response(
                        id,
                        // Marker-encoded like the request side: a loaded
                        // model with non-finite leaves must answer the
                        // same values over the socket as in-process
                        // (Json::num would collapse them to null).
                        Json::obj([
                            (
                                "predictions",
                                Json::arr(
                                    preds.into_iter().map(reds_metamodel::persist::f64_to_json),
                                ),
                            ),
                            // Which registry version answered — the
                            // client-visible half of the hot-swap
                            // attribution story.
                            ("version", Json::num(version as f64)),
                        ]),
                    ),
                    false,
                ),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Discover { id, params, model } => {
                match self.discover(&params, model.as_deref()) {
                    Ok(result) => (ok_response(id, result.to_json()), false),
                    Err(e) => (error_response(id, &e), false),
                }
            }
            Request::DiscoverStreaming { id, params, model } => {
                match self.discover_streaming(&params, model.as_deref()) {
                    Ok(result) => (ok_response(id, result.to_json()), false),
                    Err(e) => (error_response(id, &e), false),
                }
            }
            Request::Swap { id, model, path } => match self.swap(model.as_deref(), &path) {
                Ok(outcome) => (ok_response(id, outcome.to_json()), false),
                Err(e) => (error_response(id, &e), false),
            },
            Request::Info { id } => (ok_response(id, self.info()), false),
            Request::Shutdown { id } => (
                ok_response(id, Json::obj([("shutdown", Json::Bool(true))])),
                true,
            ),
        }
    }
}

impl FrameHandler for Service {
    fn handle_frame(&self, line: &str) -> (Json, bool) {
        Service::handle_frame(self, line)
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::shutdown`] or send the `shutdown` command.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Waker,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// `true` once shutdown has been requested or served.
    pub fn is_shut_down(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests shutdown and waits for the reactor (and its executors)
    /// to wind down.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.nudge();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Waits for the server to stop on its own (a client's `shutdown`
    /// command), joining every thread.
    pub fn join(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
/// starts the reactor serving `artifact` as the default model.
pub fn serve(artifact: ModelArtifact, addr: &str, limits: ServeLimits) -> io::Result<ServerHandle> {
    let service = Arc::new(Service::new(artifact, limits));
    serve_service(service, addr)
}

/// Starts the reactor over an already-built [`Service`] (multi-model
/// registries enter here).
pub fn serve_service(service: Arc<Service>, addr: &str) -> io::Result<ServerHandle> {
    let limits = service.limits().clone();
    let gauges = Arc::clone(service.gauges());
    serve_handler(service, addr, limits, gauges)
}

/// Starts the reactor over any [`FrameHandler`] — the shard router
/// reuses the entire connection core this way.
pub fn serve_handler(
    handler: Arc<dyn FrameHandler>,
    addr: &str,
    limits: ServeLimits,
    gauges: Arc<ConnGauges>,
) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let parts = spawn_reactor(listener, handler, limits, gauges, Arc::clone(&stop))?;
    Ok(ServerHandle {
        addr,
        stop,
        waker: parts.waker,
        thread: Some(parts.thread),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use reds_metamodel::{Metamodel, RandomForest, RandomForestParams, SavedModel};

    fn tiny_service() -> Service {
        let mut rng = StdRng::seed_from_u64(41);
        let train = Dataset::from_fn((0..160 * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.5 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap();
        let params = RandomForestParams {
            n_trees: 10,
            ..Default::default()
        };
        let model = RandomForest::fit(&train, &params, &mut rng);
        Service::new(
            ModelArtifact {
                function: "corner".to_string(),
                seed: 41,
                pool_seed: 4100,
                pool_design: crate::artifact::POOL_DESIGN_UNIFORM.to_string(),
                model: SavedModel::Forest(model).into(),
                train,
            },
            ServeLimits {
                max_rows_per_request: 64,
                max_discover_l: 4_000,
                ..Default::default()
            },
        )
    }

    #[test]
    fn validate_points_rejects_what_the_pipeline_would() {
        let limits = ServeLimits::default();
        // Wrong declared width.
        assert_eq!(
            validate_points(&[0.0; 4], 3, 2, &limits).unwrap_err().code,
            crate::protocol::ErrorCode::BadRequest
        );
        // Ragged buffer: len % m != 0.
        let err = validate_points(&[0.0; 5], 2, 2, &limits).unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::BadRequest);
        assert!(err.message.contains("tile"), "{}", err.message);
        // NaN coordinate, reported by row and column.
        let mut pts = vec![0.5; 6];
        pts[3] = f64::NAN;
        let err = validate_points(&pts, 2, 2, &limits).unwrap_err();
        assert!(err.message.contains("row 1"), "{}", err.message);
        assert!(err.message.contains("column 1"), "{}", err.message);
        // Infinities are legal (datasets allow them).
        assert!(validate_points(&[f64::INFINITY, 0.0], 2, 2, &limits).is_ok());
        // Row cap.
        let tight = ServeLimits {
            max_rows_per_request: 2,
            ..Default::default()
        };
        assert_eq!(
            validate_points(&[0.0; 6], 2, 2, &tight).unwrap_err().code,
            crate::protocol::ErrorCode::TooLarge
        );
    }

    #[test]
    fn service_predict_matches_direct_model_call_bitwise() {
        let service = tiny_service();
        let query: Vec<f64> = (0..40).map(|i| (i % 7) as f64 / 7.0).collect();
        let (version, served) = service.predict(query.clone(), 2, None).expect("serves");
        assert_eq!(version, 1, "fresh registry serves version 1");
        let current = service.registry().get(None).unwrap().current();
        let direct = current.artifact.model.predict_batch(&query, 2);
        assert_eq!(served.len(), direct.len());
        for (a, b) in served.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn unknown_model_is_a_bad_request() {
        let service = tiny_service();
        let err = service
            .predict(vec![0.5, 0.5], 2, Some("nonexistent"))
            .expect_err("unknown model");
        assert_eq!(err.code, crate::protocol::ErrorCode::BadRequest);
        assert!(err.message.contains("nonexistent"), "{}", err.message);
    }

    #[test]
    fn service_discover_matches_run_discover() {
        let service = tiny_service();
        let params = DiscoverParams {
            l: 2_000,
            seed: 9,
            ..Default::default()
        };
        let served = service.discover(&params, None).expect("discovers");
        let current = service.registry().get(None).unwrap().current();
        let direct = run_discover(
            |pts| Ok(current.artifact.model.predict_batch(&pts, 2)),
            2,
            &current.artifact.train,
            &params,
        )
        .expect("runs");
        assert_eq!(served, direct);
        assert!(!served.boxes.is_empty());
    }

    #[test]
    fn service_discover_streaming_is_bit_identical_to_discover() {
        let service = tiny_service();
        let params = DiscoverParams {
            l: 2_500,
            seed: 13,
            ..Default::default()
        };
        let monolithic = service.discover(&params, None).expect("discovers");
        // 4_000 > l exercises the clamp-to-l path while staying inside
        // the max_discover_l cap (anything above it is a bad_request).
        for chunk_rows in [0usize, 1, 311, 4_000] {
            let streamed = service
                .discover_streaming(
                    &StreamDiscoverParams {
                        l: params.l,
                        seed: Some(params.seed),
                        algorithm: params.algorithm,
                        bnd: params.bnd,
                        chunk_rows,
                        ooc: false,
                    },
                    None,
                )
                .expect("streams");
            assert_eq!(streamed, monolithic, "chunk_rows = {chunk_rows}");
        }
    }

    #[test]
    fn streaming_without_a_seed_serves_the_artifact_pool() {
        let service = tiny_service();
        let pool_seed = service
            .registry()
            .get(None)
            .unwrap()
            .current()
            .artifact
            .pool_seed;
        let from_artifact = service
            .discover_streaming(
                &StreamDiscoverParams {
                    l: 1_500,
                    seed: None,
                    ..Default::default()
                },
                None,
            )
            .expect("streams");
        // Explicitly requesting the recorded pool seed must reproduce
        // the same boxes — a served run is recoverable from the
        // artifact file alone.
        let explicit = service
            .discover_streaming(
                &StreamDiscoverParams {
                    l: 1_500,
                    seed: Some(pool_seed),
                    ..Default::default()
                },
                None,
            )
            .expect("streams");
        assert_eq!(from_artifact, explicit);
        // And it equals the monolithic path at the same resolved seed.
        let monolithic = service
            .discover(
                &DiscoverParams {
                    l: 1_500,
                    seed: pool_seed,
                    ..Default::default()
                },
                None,
            )
            .expect("discovers");
        assert_eq!(from_artifact, monolithic);
    }

    #[test]
    fn tiny_chunk_requests_are_clamped_but_still_bit_identical() {
        let service = tiny_service();
        // chunk_rows = 1 at l = 3000 would mean 3000 spilled runs (and
        // 3000 open files in the merge); the server clamps the chunk so
        // runs stay bounded — and the result is unchanged, because
        // chunking never affects the boxes.
        let clamped = service
            .discover_streaming(
                &StreamDiscoverParams {
                    l: 3_000,
                    seed: Some(5),
                    chunk_rows: 1,
                    ..Default::default()
                },
                None,
            )
            .expect("clamped stream serves");
        let monolithic = service
            .discover(
                &DiscoverParams {
                    l: 3_000,
                    seed: 5,
                    ..Default::default()
                },
                None,
            )
            .expect("discovers");
        assert_eq!(clamped, monolithic);
    }

    #[test]
    fn ooc_discover_streaming_is_bit_identical_to_in_memory() {
        let service = tiny_service();
        let params = DiscoverParams {
            l: 2_500,
            seed: 21,
            ..Default::default()
        };
        let monolithic = service.discover(&params, None).expect("discovers");
        for algorithm in [Algorithm::Prim, Algorithm::BestInterval] {
            let monolithic = if algorithm == params.algorithm {
                monolithic.clone()
            } else {
                service
                    .discover(
                        &DiscoverParams {
                            algorithm,
                            ..params.clone()
                        },
                        None,
                    )
                    .expect("discovers")
            };
            let ooc = service
                .discover_streaming(
                    &StreamDiscoverParams {
                        l: params.l,
                        seed: Some(params.seed),
                        algorithm,
                        bnd: params.bnd,
                        chunk_rows: 311,
                        ooc: true,
                    },
                    None,
                )
                .expect("serves out of core");
            assert_eq!(ooc, monolithic, "{}", algorithm.as_str());
        }
    }

    #[test]
    fn oversized_chunk_rows_is_a_bad_request() {
        let service = tiny_service();
        let err = service
            .discover_streaming(
                &StreamDiscoverParams {
                    l: 1_000,
                    chunk_rows: 4_001, // max_discover_l is 4_000
                    ..Default::default()
                },
                None,
            )
            .unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::BadRequest);
        assert!(err.message.contains("chunk_rows"), "{}", err.message);
    }

    #[test]
    fn streaming_respects_the_discover_l_limit() {
        let service = tiny_service();
        let err = service
            .discover_streaming(
                &StreamDiscoverParams {
                    l: 4_001, // limit is 4_000 in tiny_service
                    ..Default::default()
                },
                None,
            )
            .unwrap_err();
        assert_eq!(err.code, crate::protocol::ErrorCode::TooLarge);
    }

    #[test]
    fn discover_gate_rejects_beyond_the_cap() {
        let service = tiny_service();
        // Saturate the gate artificially; the next discover must bounce
        // with too_busy instead of piling onto the executor pool.
        let cap = service.limits().max_active_discovers;
        service.active_discovers.store(cap, Ordering::SeqCst);
        let err = service
            .discover(
                &DiscoverParams {
                    l: 500,
                    ..Default::default()
                },
                None,
            )
            .expect_err("gate rejects");
        assert_eq!(err.code, crate::protocol::ErrorCode::TooBusy);
        assert!(err.message.contains("discover"), "{}", err.message);
        service.active_discovers.store(0, Ordering::SeqCst);
        // And the slot is released after a served run.
        service
            .discover(
                &DiscoverParams {
                    l: 500,
                    ..Default::default()
                },
                None,
            )
            .expect("serves after release");
        assert_eq!(service.active_discovers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn handle_frame_returns_structured_errors_never_panics() {
        let service = tiny_service();
        for (line, code) in [
            ("not json at all", "parse"),
            ("{\"cmd\":\"zap\"}", "parse"),
            (
                "{\"id\":3,\"cmd\":\"predict_batch\",\"m\":2,\"points\":[1,2,3]}",
                "bad_request",
            ),
            (
                "{\"id\":4,\"cmd\":\"predict_batch\",\"m\":5,\"points\":[1,2,3,4,5]}",
                "bad_request",
            ),
            (
                "{\"id\":5,\"cmd\":\"predict_batch\",\"m\":2,\"points\":[1,null]}",
                "parse",
            ),
            ("{\"id\":6,\"cmd\":\"discover\",\"l\":100000}", "too_large"),
            ("{\"id\":7,\"cmd\":\"discover\",\"l\":0}", "bad_request"),
            (
                "{\"id\":8,\"cmd\":\"predict_batch\",\"m\":2,\"points\":[1,2],\"model\":\"ghost\"}",
                "bad_request",
            ),
            (
                "{\"id\":9,\"cmd\":\"swap\",\"path\":\"/nonexistent/model.redsart\"}",
                "bad_request",
            ),
        ] {
            let (resp, shutdown) = service.handle_frame(line);
            assert!(!shutdown, "{line}");
            assert_eq!(
                resp.get("ok").and_then(Json::as_bool),
                Some(false),
                "{line} → {resp}"
            );
            assert_eq!(
                resp.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some(code),
                "{line} → {resp}"
            );
        }
        // Oversized predict_batch rows → too_large (limit is 64 rows).
        let big: Vec<String> = (0..65 * 2).map(|_| "0.5".to_string()).collect();
        let line = format!(
            "{{\"id\":8,\"cmd\":\"predict_batch\",\"m\":2,\"points\":[{}]}}",
            big.join(",")
        );
        let (resp, _) = service.handle_frame(&line);
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some("too_large")
        );
    }

    #[test]
    fn handle_frame_serves_requests_and_flags_shutdown() {
        let service = tiny_service();
        let (resp, _) = service.handle_frame(
            "{\"id\":1,\"cmd\":\"predict_batch\",\"m\":2,\"points\":[0.9,0.9,0.1,0.1]}",
        );
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
        let result = resp.get("result").expect("result");
        let preds = result
            .get("predictions")
            .and_then(Json::as_array)
            .expect("predictions");
        assert_eq!(preds.len(), 2);
        assert_eq!(
            result.get("version").and_then(Json::as_f64),
            Some(1.0),
            "predict answers carry the serving version"
        );
        let (resp, _) = service.handle_frame("{\"id\":2,\"cmd\":\"info\"}");
        let info = resp.get("result").expect("info result");
        assert_eq!(info.get("family").and_then(Json::as_str), Some("f"));
        assert_eq!(info.get("version").and_then(Json::as_f64), Some(1.0));
        let models = info.get("models").and_then(Json::as_array).expect("models");
        assert_eq!(models.len(), 1);
        assert_eq!(
            models[0].get("name").and_then(Json::as_str),
            Some(crate::registry::DEFAULT_MODEL)
        );
        assert!(models[0].get("queue_capacity").is_some());
        let (resp, shutdown) = service.handle_frame("{\"id\":3,\"cmd\":\"shutdown\"}");
        assert!(shutdown);
        assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true));
    }
}
