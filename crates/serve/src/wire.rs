//! NDJSON frame transport shared by every wire consumer: the serving
//! server/client and the fleet coordinator/worker protocol.
//!
//! A *frame* is one newline-terminated line. The reader enforces a
//! byte cap (a peer cannot balloon memory with an endless line) and is
//! generic over [`BufRead`], so property tests can drive it with
//! in-memory byte slices — including torn frames: EOF mid-payload
//! yields the partial line, whose JSON parse then fails *cleanly* at
//! the protocol layer instead of hanging or panicking here.
//!
//! Sockets are expected to carry a read timeout; every blocking wakeup
//! (`WouldBlock`/`TimedOut`) is routed through a caller-supplied
//! [`WaitPolicy`] so each consumer bounds its own patience: the server
//! waits until its shutdown flag flips, clients and the fleet
//! coordinator spend a finite retry budget and then surface a
//! structured timeout instead of blocking a thread forever.

use std::io::{self, BufRead, Write};
use std::time::Duration;

use reds_json::Json;

/// Outcome of reading one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped). A trailing line without a
    /// final newline before EOF is also accepted — half-transmitted
    /// *content* is the protocol layer's problem, not the framing's.
    Line(Vec<u8>),
    /// Peer closed the connection before sending anything.
    Eof,
    /// The line exceeded the frame limit; the rest of it is unread.
    TooLarge,
    /// The [`WaitPolicy`] gave up before a full frame arrived.
    TimedOut,
}

/// What to do when the underlying read would block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Try the read again (the socket's read timeout paces the loop).
    Retry,
    /// Stop reading; [`read_frame`] returns [`Frame::TimedOut`].
    GiveUp,
}

/// Per-read patience of a frame consumer.
pub trait WaitPolicy {
    /// Called on every `WouldBlock`/`TimedOut` wakeup of the socket.
    fn on_block(&mut self) -> Wait;
}

impl<F: FnMut() -> Wait> WaitPolicy for F {
    fn on_block(&mut self) -> Wait {
        self()
    }
}

/// A [`WaitPolicy`] that retries a bounded number of wakeups and then
/// gives up — with a socket read timeout of `t`, a budget of `n` bounds
/// the total wait for one frame by roughly `n × t`.
#[derive(Debug, Clone)]
pub struct RetryBudget {
    remaining: u64,
}

impl RetryBudget {
    /// A budget of `n` wakeups.
    pub fn new(n: u64) -> Self {
        Self { remaining: n }
    }

    /// The budget that bounds `total` of waiting at a socket read
    /// timeout of `per_wait` (rounded up, minimum one wakeup).
    pub fn for_total(total: Duration, per_wait: Duration) -> Self {
        let per = per_wait.as_millis().max(1);
        Self::new((total.as_millis().div_ceil(per).max(1)) as u64)
    }
}

impl WaitPolicy for RetryBudget {
    fn on_block(&mut self) -> Wait {
        if self.remaining == 0 {
            Wait::GiveUp
        } else {
            self.remaining -= 1;
            Wait::Retry
        }
    }
}

/// Reads one newline-terminated frame with a size cap. Blocking
/// wakeups consult `wait`; genuine transport failures are returned as
/// errors. Torn input (EOF mid-payload) comes back as a `Line` whose
/// content the protocol layer will reject — never a panic or a hang.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
    wait: &mut impl WaitPolicy,
) -> io::Result<Frame> {
    let mut line = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                match wait.on_block() {
                    Wait::Retry => continue,
                    Wait::GiveUp => return Ok(Frame::TimedOut),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(if line.is_empty() {
                Frame::Eof
            } else {
                // Trailing frame without a final newline: accept it.
                Frame::Line(std::mem::take(&mut line))
            });
        }
        if let Some(at) = buf.iter().position(|&b| b == b'\n') {
            if line.len() + at > max_bytes {
                // Leave the newline unconsumed so the caller's
                // drain_oversized_line stops at it instead of eating
                // the *next* frame (stream desync).
                reader.consume(at);
                return Ok(Frame::TooLarge);
            }
            line.extend_from_slice(&buf[..at]);
            reader.consume(at + 1);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return Ok(Frame::Line(line));
        }
        let chunk = buf.len();
        line.extend_from_slice(buf);
        reader.consume(chunk);
        if line.len() > max_bytes {
            return Ok(Frame::TooLarge);
        }
    }
}

/// One framing event produced by the push-based [`FrameBuffer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameEvent {
    /// A complete line (newline stripped, trailing CR stripped).
    Frame(Vec<u8>),
    /// The accumulating line exceeded the frame limit. The buffer has
    /// switched to discard mode: subsequent bytes of the over-long
    /// line are counted but not stored, until its newline arrives.
    TooLarge,
    /// The newline terminating a previously rejected over-long line
    /// was consumed; normal framing resumes with the next byte.
    DrainEnd,
}

/// Incremental NDJSON framing for readiness-driven (non-blocking)
/// readers: bytes are *pushed* as they arrive instead of pulled from a
/// [`BufRead`].
///
/// This is the same framing policy as [`read_frame`] — one newline per
/// frame, CR stripped, a hard byte cap per line — expressed as a state
/// machine the epoll reactor can feed from arbitrary read chunks. The
/// cap semantics match the blocking reader exactly: a line of exactly
/// `max_bytes` is accepted, one byte more is rejected, and the
/// rejected line's tail is *discarded in place* (the push equivalent
/// of [`drain_oversized_line`]) so an already-queued error response
/// can still reach the peer before the connection closes.
#[derive(Debug)]
pub struct FrameBuffer {
    max_bytes: usize,
    line: Vec<u8>,
    discarding: bool,
    discarded: usize,
}

impl FrameBuffer {
    /// A fresh decoder with the given per-line byte cap.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            max_bytes,
            line: Vec::new(),
            discarding: false,
            discarded: 0,
        }
    }

    /// `true` while the buffer is discarding the tail of a rejected
    /// over-long line (between [`FrameEvent::TooLarge`] and
    /// [`FrameEvent::DrainEnd`]).
    pub fn discarding(&self) -> bool {
        self.discarding
    }

    /// Bytes discarded so far from the current over-long line — the
    /// caller's drain budget (a peer writing an endless line must not
    /// pin the connection forever).
    pub fn discarded(&self) -> usize {
        self.discarded
    }

    /// Feeds `input`, stopping at the first complete event. Returns
    /// the number of bytes consumed and the event, if any; callers
    /// loop until the whole chunk is consumed:
    ///
    /// ```ignore
    /// let mut off = 0;
    /// while off < chunk.len() {
    ///     let (used, event) = fb.push(&chunk[off..]);
    ///     off += used;
    ///     if let Some(event) = event { /* … */ }
    /// }
    /// ```
    pub fn push(&mut self, input: &[u8]) -> (usize, Option<FrameEvent>) {
        if input.is_empty() {
            return (0, None);
        }
        if self.discarding {
            return match input.iter().position(|&b| b == b'\n') {
                Some(at) => {
                    self.discarded += at + 1;
                    self.discarding = false;
                    (at + 1, Some(FrameEvent::DrainEnd))
                }
                None => {
                    self.discarded += input.len();
                    (input.len(), None)
                }
            };
        }
        match input.iter().position(|&b| b == b'\n') {
            Some(at) => {
                // Same predicate as read_frame: content longer than the
                // cap is rejected even when its newline is in sight.
                if self.line.len() + at > self.max_bytes {
                    self.line.clear();
                    self.discarding = true;
                    self.discarded = at;
                    // The newline itself is left for the discard branch,
                    // which reports DrainEnd on the next push.
                    return (at, Some(FrameEvent::TooLarge));
                }
                let mut line = std::mem::take(&mut self.line);
                line.extend_from_slice(&input[..at]);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                (at + 1, Some(FrameEvent::Frame(line)))
            }
            None => {
                if self.line.len() + input.len() > self.max_bytes {
                    self.line.clear();
                    self.discarding = true;
                    self.discarded = input.len();
                    return (input.len(), Some(FrameEvent::TooLarge));
                }
                self.line.extend_from_slice(input);
                (input.len(), None)
            }
        }
    }

    /// The torn trailing line at EOF, if any — the push equivalent of
    /// [`read_frame`] accepting a final frame without its newline.
    pub fn take_trailing(&mut self) -> Option<Vec<u8>> {
        if self.discarding || self.line.is_empty() {
            None
        } else {
            let mut line = std::mem::take(&mut self.line);
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            Some(line)
        }
    }
}

/// Discards the tail of a rejected over-long line up to its newline,
/// EOF, `max_drain` bytes, or the first read timeout (a quiet peer has
/// finished writing). Lets the peer's blocked write complete so an
/// already-queued error response arrives intact instead of being
/// destroyed by a connection reset.
pub fn drain_oversized_line<R: BufRead>(reader: &mut R, max_drain: usize) -> io::Result<()> {
    let mut drained = 0usize;
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                return Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if buf.is_empty() {
            return Ok(());
        }
        if let Some(at) = buf.iter().position(|&b| b == b'\n') {
            reader.consume(at + 1);
            return Ok(());
        }
        let chunk = buf.len();
        reader.consume(chunk);
        drained += chunk;
        if drained > max_drain {
            return Ok(());
        }
    }
}

/// Serializes `doc` as one frame (compact JSON + newline) and flushes.
pub fn write_frame<W: Write>(writer: &mut W, doc: &Json) -> io::Result<()> {
    let mut text = doc.to_string_compact();
    text.push('\n');
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn never_block() -> impl WaitPolicy {
        || -> Wait { panic!("in-memory reads never block") }
    }

    #[test]
    fn frames_split_on_newlines_and_accept_trailing_tail() {
        let mut r = Cursor::new(b"{\"a\":1}\n{\"b\":2}\r\ntail".to_vec());
        assert_eq!(
            read_frame(&mut r, 1024, &mut never_block()).unwrap(),
            Frame::Line(b"{\"a\":1}".to_vec())
        );
        assert_eq!(
            read_frame(&mut r, 1024, &mut never_block()).unwrap(),
            Frame::Line(b"{\"b\":2}".to_vec()),
            "CR is stripped"
        );
        assert_eq!(
            read_frame(&mut r, 1024, &mut never_block()).unwrap(),
            Frame::Line(b"tail".to_vec()),
            "EOF mid-payload yields the torn prefix"
        );
        assert_eq!(
            read_frame(&mut r, 1024, &mut never_block()).unwrap(),
            Frame::Eof
        );
    }

    #[test]
    fn oversized_lines_are_rejected_without_reading_them_whole() {
        let mut r = Cursor::new(vec![b'x'; 1 << 20]);
        assert_eq!(
            read_frame(&mut r, 64, &mut never_block()).unwrap(),
            Frame::TooLarge
        );
    }

    #[test]
    fn retry_budget_gives_up_after_n_wakeups() {
        let mut budget = RetryBudget::new(3);
        assert_eq!(budget.on_block(), Wait::Retry);
        assert_eq!(budget.on_block(), Wait::Retry);
        assert_eq!(budget.on_block(), Wait::Retry);
        assert_eq!(budget.on_block(), Wait::GiveUp);
        let mut total =
            RetryBudget::for_total(Duration::from_millis(500), Duration::from_millis(200));
        assert_eq!(total.on_block(), Wait::Retry);
        assert_eq!(total.on_block(), Wait::Retry);
        assert_eq!(total.on_block(), Wait::Retry);
        assert_eq!(total.on_block(), Wait::GiveUp);
    }
}
