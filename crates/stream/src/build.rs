//! Chunk-folding construction of the streamed pool.
//!
//! [`PoolBuilder`] is the per-column accumulator the ISSUE's pipeline
//! folds into: each pushed chunk is radix-argsorted locally per column
//! (`O(chunk)` scratch), spilled as one sorted run per column, and its
//! raw points/labels appended to the data spill. Nothing proportional
//! to the total row count `L` is held in memory until the caller picks
//! a finisher:
//!
//! * [`PoolBuilder::finish_pool`] — k-way merge every column into the
//!   final `SortedView` order and read the points/labels back into a
//!   [`Dataset`]: the handoff to subgroup discovery (which needs random
//!   access to values, so `O(L·M)` memory is its floor);
//! * [`PoolBuilder::finish_stats`] — stream the merge into an FNV-1a
//!   digest instead: `O(chunk + runs)` peak memory end to end, used by
//!   the peak-RSS benches and as the cross-mode equivalence witness.

use std::path::Path;

use reds_art::{
    ArtFile, ArtWriter, PageIndex, SECTION_COLUMN, SECTION_DATASET, SECTION_PAGE_INDEX,
};
use reds_data::{argsort_stable, ord_key, Dataset, SortedView};

use crate::spill::{ColumnRuns, FloatSpill, RunWriter, SpillDir};
use crate::{StreamConfig, StreamError};

/// The materialized result of a streamed construction: the
/// pseudo-labeled dataset plus its presorted view, bit-identical to
/// what the in-memory path (`Dataset::new` + `SortedView::new`) builds.
#[derive(Debug)]
pub struct StreamedPool {
    /// The pseudo-labeled `D_new`.
    pub dataset: Dataset,
    /// `SortedView` over `dataset`, assembled by the out-of-core merge.
    pub view: SortedView,
}

/// Summary of a digest-only streamed construction.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamStats {
    /// Rows streamed (`L`).
    pub rows: u64,
    /// Input columns (`M`).
    pub m: usize,
    /// Sum of the pseudo-labels (hard labels: the positive count).
    pub label_sum: f64,
    /// Rows with label > 0.5 (hard positives).
    pub positives: u64,
    /// FNV-1a digest over every column's merged row order and every
    /// label's bits — equals [`digest_pool`] of the in-memory result.
    pub digest: u64,
    /// Sorted runs spilled per column.
    pub runs_per_column: usize,
    /// Total bytes written to the spill store.
    pub spilled_bytes: u64,
}

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

/// Incremental FNV-1a over little-endian words.
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Self(FNV_OFFSET)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// Digest of an in-memory pool: every column's row-id order, then every
/// label's bit pattern. The streamed [`PoolBuilder::finish_stats`]
/// computes the same value without materializing either — equality of
/// digests is the cheap bit-identity witness the benches assert.
pub fn digest_pool(columns: &[Vec<u32>], labels: &[f64]) -> u64 {
    let mut fnv = Fnv::new();
    for col in columns {
        for &row in col {
            fnv.update(&row.to_le_bytes());
        }
    }
    for &label in labels {
        fnv.update(&label.to_bits().to_le_bytes());
    }
    fnv.0
}

/// The streaming accumulator: push chunks, then finish.
pub struct PoolBuilder {
    m: usize,
    rows: usize,
    spill: SpillDir,
    columns: Vec<RunWriter>,
    points: FloatSpill,
    labels: FloatSpill,
    label_sum: f64,
    positives: u64,
    /// Chunk-local scratch, reused across chunks.
    keys: Vec<u64>,
}

impl PoolBuilder {
    /// Creates the builder and its spill store.
    pub fn new(m: usize, cfg: &StreamConfig) -> Result<Self, StreamError> {
        if m == 0 {
            return Err(StreamError::ShapeMismatch { len: 0, m: 0 });
        }
        let spill = SpillDir::create_in(cfg.spill_dir.as_deref())?;
        let columns = (0..m)
            .map(|j| RunWriter::create(spill.path(), j))
            .collect::<Result<Vec<_>, _>>()?;
        let points = FloatSpill::create(spill.path(), "pool.points")?;
        let labels = FloatSpill::create(spill.path(), "pool.labels")?;
        Ok(Self {
            m,
            rows: 0,
            spill,
            columns,
            points,
            labels,
            label_sum: 0.0,
            positives: 0,
            keys: Vec::new(),
        })
    }

    /// Rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Folds one pseudo-labeled chunk into the accumulators: NaN
    /// validation, per-column chunk-local argsort spilled as one run
    /// each, raw points and labels appended to the data spill.
    pub fn push_chunk(&mut self, points: &[f64], labels: &[f64]) -> Result<(), StreamError> {
        let m = self.m;
        if !points.len().is_multiple_of(m) || points.len() / m != labels.len() {
            return Err(StreamError::ShapeMismatch {
                len: points.len(),
                m,
            });
        }
        let n = labels.len();
        if n == 0 {
            return Ok(());
        }
        if self.rows + n > u32::MAX as usize {
            return Err(StreamError::TooManyRows {
                rows: self.rows + n,
            });
        }
        // Datasets reject NaN coordinates; catch it here with the
        // *global* row index so streamed and monolithic paths report
        // the same position.
        if let Some(at) = points.iter().position(|v| v.is_nan()) {
            return Err(StreamError::NanInPoint {
                row: self.rows + at / m,
                column: at % m,
            });
        }
        let base = self.rows as u32;
        for (j, writer) in self.columns.iter_mut().enumerate() {
            self.keys.clear();
            self.keys
                .extend(points.iter().skip(j).step_by(m).map(|&v| ord_key(v)));
            // Local ranks sorted by (key, local rank); adding the chunk
            // base preserves the tie order globally because all rows of
            // this chunk follow all previously pushed rows.
            let order = argsort_stable(&self.keys);
            let keys = &self.keys;
            writer.push_run(
                order
                    .iter()
                    .map(|&local| (keys[local as usize], base + local)),
            )?;
        }
        self.points.append(points)?;
        self.labels.append(labels)?;
        for &y in labels {
            self.label_sum += y;
            if y > 0.5 {
                self.positives += 1;
            }
        }
        self.rows += n;
        Ok(())
    }

    fn merged_columns(
        columns: Vec<RunWriter>,
        rows: usize,
    ) -> Result<(Vec<ColumnRuns>, usize, u64), StreamError> {
        let mut runs = Vec::with_capacity(columns.len());
        let mut spilled = 0u64;
        let mut max_runs = 0usize;
        for writer in columns {
            let col = writer.into_runs()?;
            if col.total_rows() != rows as u64 {
                return Err(StreamError::CorruptSpill {
                    column: runs.len(),
                    detail: format!(
                        "run store holds {} rows, builder pushed {rows}",
                        col.total_rows()
                    ),
                });
            }
            spilled += col.spilled_bytes();
            max_runs = max_runs.max(col.run_count());
            runs.push(col);
        }
        Ok((runs, max_runs, spilled))
    }

    /// Merges the spilled runs and materializes the final
    /// [`Dataset`] + [`SortedView`] — the handoff to subgroup
    /// discovery. The spill directory is removed on return (and on
    /// error, via RAII).
    pub fn finish_pool(self) -> Result<StreamedPool, StreamError> {
        if self.rows == 0 {
            return Err(StreamError::ZeroRows);
        }
        let rows = self.rows;
        let (runs, _, _) = Self::merged_columns(self.columns, rows)?;
        let mut cols = Vec::with_capacity(runs.len());
        for col in &runs {
            let mut order = Vec::with_capacity(rows);
            col.merge(|row, _key| order.push(row))?;
            cols.push(order);
        }
        let view = SortedView::from_presorted_columns(cols, rows)?;
        let points = self.points.into_vec()?;
        let labels = self.labels.into_vec()?;
        let dataset = Dataset::new(points, labels, self.m)?;
        drop(self.spill); // explicit: spill store gone before returning
        Ok(StreamedPool { dataset, view })
    }

    /// Merges the spilled runs into a digest without materializing
    /// anything of size `O(L)` — peak memory stays bounded by
    /// `O(chunk + runs)`.
    pub fn finish_stats(self) -> Result<StreamStats, StreamError> {
        if self.rows == 0 {
            return Err(StreamError::ZeroRows);
        }
        let rows = self.rows;
        let (runs, runs_per_column, mut spilled) = Self::merged_columns(self.columns, rows)?;
        let mut fnv = Fnv::new();
        for col in &runs {
            let mut emitted = 0u64;
            col.merge(|row, _key| {
                fnv.update(&row.to_le_bytes());
                emitted += 1;
            })?;
            debug_assert_eq!(emitted, rows as u64);
        }
        spilled += self.points.spilled_bytes() + self.labels.spilled_bytes();
        self.labels
            .for_each(|v| fnv.update(&v.to_bits().to_le_bytes()))?;
        Ok(StreamStats {
            rows: rows as u64,
            m: self.m,
            label_sum: self.label_sum,
            positives: self.positives,
            digest: fnv.0,
            runs_per_column,
            spilled_bytes: spilled,
        })
    }

    /// Merges the spilled runs directly into a `.redsart` artifact at
    /// `path`: one fully merged (single-run, rank-addressable)
    /// [`SECTION_COLUMN`] per input column, one
    /// [`SECTION_PAGE_INDEX`] of per-page min/max key fences at
    /// `page_rows` records per page (the out-of-core reader's skip
    /// structure — see [`PageIndex`]), plus one [`SECTION_DATASET`]
    /// streamed straight from the data spill — at no point does an
    /// `O(L)` row-order or point buffer exist in memory (the fences
    /// are `O(L / page_rows)`). The returned stats (digest included)
    /// equal [`PoolBuilder::finish_stats`] of the same pushes, and
    /// [`load_art_pool`] reconstructs the exact [`StreamedPool`] that
    /// [`PoolBuilder::finish_pool`] would have built.
    pub fn finish_art(self, path: &Path, page_rows: u32) -> Result<StreamStats, StreamError> {
        if self.rows == 0 {
            return Err(StreamError::ZeroRows);
        }
        if page_rows == 0 {
            return Err(StreamError::CorruptSpill {
                column: 0,
                detail: "page_rows must be positive".into(),
            });
        }
        let rows = self.rows;
        let (runs, runs_per_column, mut spilled) = Self::merged_columns(self.columns, rows)?;
        let mut writer = ArtWriter::create(path)?;
        let mut fnv = Fnv::new();
        let mut fences: Vec<(u64, u64)> = Vec::with_capacity(rows.div_ceil(page_rows as usize));
        for (j, col) in runs.iter().enumerate() {
            writer.begin_section(SECTION_COLUMN)?;
            writer.write(&(j as u32).to_le_bytes())?;
            writer.write(&0u32.to_le_bytes())?; // reserved
            writer.write(&(rows as u64).to_le_bytes())?;
            writer.write(&1u64.to_le_bytes())?; // run count: fully merged
            writer.write(&(rows as u64).to_le_bytes())?; // the run's length
                                                         // `merge`'s emit callback is infallible; park the first
                                                         // writer error and surface it right after.
            let mut write_err: Option<reds_art::ArtError> = None;
            fences.clear();
            let mut rank = 0u64;
            col.merge(|row, key| {
                fnv.update(&row.to_le_bytes());
                // Records arrive in ascending key order, so the page's
                // min is its first key and its max its latest.
                if rank.is_multiple_of(page_rows as u64) {
                    fences.push((key, key));
                } else if let Some(last) = fences.last_mut() {
                    last.1 = key;
                }
                rank += 1;
                if write_err.is_none() {
                    if let Err(e) = writer.write_record(key, row) {
                        write_err = Some(e);
                    }
                }
            })?;
            if let Some(e) = write_err {
                return Err(e.into());
            }
            writer.pad_to_8()?;
            writer.end_section()?;
            writer.section(
                SECTION_PAGE_INDEX,
                &PageIndex::encode(j as u32, page_rows, &fences),
            )?;
        }
        spilled += self.points.spilled_bytes() + self.labels.spilled_bytes();
        writer.begin_section(SECTION_DATASET)?;
        writer.write(&(rows as u64).to_le_bytes())?;
        writer.write(&(self.m as u64).to_le_bytes())?;
        let mut write_err: Option<reds_art::ArtError> = None;
        self.points.for_each(|v| {
            if write_err.is_none() {
                if let Err(e) = writer.write(&v.to_bits().to_le_bytes()) {
                    write_err = Some(e);
                }
            }
        })?;
        if let Some(e) = write_err {
            return Err(e.into());
        }
        let mut write_err: Option<reds_art::ArtError> = None;
        self.labels.for_each(|v| {
            fnv.update(&v.to_bits().to_le_bytes());
            if write_err.is_none() {
                if let Err(e) = writer.write(&v.to_bits().to_le_bytes()) {
                    write_err = Some(e);
                }
            }
        })?;
        if let Some(e) = write_err {
            return Err(e.into());
        }
        writer.end_section()?;
        writer.finish()?;
        Ok(StreamStats {
            rows: rows as u64,
            m: self.m,
            label_sum: self.label_sum,
            positives: self.positives,
            digest: fnv.0,
            runs_per_column,
            spilled_bytes: spilled,
        })
    }
}

/// Loads a pool artifact written by [`PoolBuilder::finish_art`] back
/// into a [`StreamedPool`] — checksum-verified, structurally validated
/// (every column present exactly once, each a permutation of the
/// dataset's rows), and bit-identical to what
/// [`PoolBuilder::finish_pool`] would have produced from the same
/// pushes.
pub fn load_art_pool(path: &Path) -> Result<StreamedPool, StreamError> {
    let file = ArtFile::open(path)?;
    let dataset = file.dataset()?;
    let sections = file.columns()?;
    let mut cols: Vec<Option<Vec<u32>>> = vec![None; dataset.m()];
    for section in &sections {
        let j = section.column();
        if j >= dataset.m() {
            return Err(StreamError::CorruptSpill {
                column: j,
                detail: format!("artifact sorts column {j} of an m = {} pool", dataset.m()),
            });
        }
        if cols[j].is_some() {
            return Err(StreamError::CorruptSpill {
                column: j,
                detail: "artifact holds column twice".into(),
            });
        }
        if section.n_rows() != dataset.n() {
            return Err(StreamError::CorruptSpill {
                column: j,
                detail: format!(
                    "column sorts {} rows, dataset has {}",
                    section.n_rows(),
                    dataset.n()
                ),
            });
        }
        cols[j] = Some(section.merged_order()?);
    }
    let cols = cols
        .into_iter()
        .enumerate()
        .map(|(j, col)| {
            col.ok_or(StreamError::CorruptSpill {
                column: j,
                detail: "artifact is missing this column's sort order".into(),
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let view = SortedView::from_presorted_columns(cols, dataset.n())?;
    Ok(StreamedPool { dataset, view })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_points(n: usize, m: usize) -> (Vec<f64>, Vec<f64>) {
        // Deterministic pseudo-random-ish values with ties.
        let points: Vec<f64> = (0..n * m)
            .map(|i| ((i * 7919) % 97) as f64 / 97.0)
            .collect();
        let labels: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        (points, labels)
    }

    fn build_chunked(
        points: &[f64],
        labels: &[f64],
        m: usize,
        chunk: usize,
    ) -> Result<PoolBuilder, StreamError> {
        let mut builder = PoolBuilder::new(m, &StreamConfig::new())?;
        let mut row = 0;
        while row < labels.len() {
            let take = chunk.min(labels.len() - row);
            builder.push_chunk(&points[row * m..(row + take) * m], &labels[row..row + take])?;
            row += take;
        }
        Ok(builder)
    }

    #[test]
    fn streamed_pool_matches_in_memory_construction_for_any_chunking() {
        let m = 3;
        let n = 157;
        let (points, labels) = demo_points(n, m);
        let reference = Dataset::new(points.clone(), labels.clone(), m).unwrap();
        let ref_view = SortedView::new(&reference);
        for chunk in [1usize, 2, 13, 64, n, n + 9] {
            let pool = build_chunked(&points, &labels, m, chunk)
                .unwrap()
                .finish_pool()
                .unwrap();
            assert_eq!(pool.dataset, reference, "chunk = {chunk}");
            for j in 0..m {
                assert_eq!(
                    pool.view.column(j),
                    ref_view.column(j),
                    "chunk = {chunk}, col {j}"
                );
            }
        }
    }

    #[test]
    fn digest_mode_agrees_with_in_memory_digest() {
        let m = 2;
        let n = 201;
        let (points, labels) = demo_points(n, m);
        let reference = Dataset::new(points.clone(), labels.clone(), m).unwrap();
        let ref_digest = digest_pool(
            &SortedView::new(&reference).into_columns(),
            reference.labels(),
        );
        for chunk in [1usize, 37, 500] {
            let stats = build_chunked(&points, &labels, m, chunk)
                .unwrap()
                .finish_stats()
                .unwrap();
            assert_eq!(stats.digest, ref_digest, "chunk = {chunk}");
            assert_eq!(stats.rows, n as u64);
            assert_eq!(
                stats.positives,
                labels.iter().filter(|&&y| y > 0.5).count() as u64
            );
        }
    }

    #[test]
    fn art_round_trip_is_bit_identical_to_finish_pool() {
        let m = 3;
        let n = 157;
        let (points, labels) = demo_points(n, m);
        let reference = build_chunked(&points, &labels, m, 13)
            .unwrap()
            .finish_pool()
            .unwrap();
        let ref_stats = build_chunked(&points, &labels, m, 13)
            .unwrap()
            .finish_stats()
            .unwrap();
        let dir = std::env::temp_dir().join(format!("reds-stream-art-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.redsart");
        let stats = build_chunked(&points, &labels, m, 13)
            .unwrap()
            .finish_art(&path, 16)
            .unwrap();
        // Same digest/counters as digest mode (the equivalence witness
        // the benches rely on) ...
        assert_eq!(stats.digest, ref_stats.digest);
        assert_eq!(stats.rows, ref_stats.rows);
        assert_eq!(stats.positives, ref_stats.positives);
        // ... and the loaded pool is the exact finish_pool result.
        let loaded = load_art_pool(&path).unwrap();
        assert_eq!(loaded.dataset, reference.dataset);
        for j in 0..m {
            assert_eq!(loaded.view.column(j), reference.view.column(j), "col {j}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn art_page_index_fences_match_the_merged_records() {
        let m = 2;
        let n = 157;
        let (points, labels) = demo_points(n, m);
        let dir = std::env::temp_dir().join(format!("reds-stream-pidx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for page_rows in [1u32, 7, 64, n as u32, n as u32 + 100] {
            let path = dir.join(format!("pool-{page_rows}.redsart"));
            build_chunked(&points, &labels, m, 13)
                .unwrap()
                .finish_art(&path, page_rows)
                .unwrap();
            let file = ArtFile::open(&path).unwrap();
            let cols = file.columns().unwrap();
            let indexes = file.page_indexes().unwrap();
            assert_eq!(indexes.len(), m, "page_rows = {page_rows}");
            for idx in indexes {
                assert_eq!(idx.page_rows, page_rows);
                assert_eq!(idx.fences.len(), n.div_ceil(page_rows as usize));
                let col = cols
                    .iter()
                    .find(|c| c.column() == idx.column as usize)
                    .unwrap();
                for (p, &(min, max)) in idx.fences.iter().enumerate() {
                    let lo = p * page_rows as usize;
                    let hi = (lo + page_rows as usize).min(n) - 1;
                    assert_eq!(min, col.record(0, lo).0, "page_rows {page_rows} page {p}");
                    assert_eq!(max, col.record(0, hi).0, "page_rows {page_rows} page {p}");
                }
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_page_rows_is_rejected() {
        let m = 2;
        let (points, labels) = demo_points(20, m);
        let dir = std::env::temp_dir().join(format!("reds-stream-zpr-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pool.redsart");
        let err = build_chunked(&points, &labels, m, 7)
            .unwrap()
            .finish_art(&path, 0)
            .unwrap_err();
        assert!(matches!(err, StreamError::CorruptSpill { .. }));
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_merge_leaves_no_orphaned_artifact() {
        // Satellite: a k-way merge that dies mid-write must not leave a
        // torn `.redsart` next to the caller's outputs. Corrupting one
        // column's run-store magic makes `merge` fail *after* the
        // writer has streamed earlier columns; the writer's RAII
        // cleanup must then unlink the partial file.
        let m = 3;
        // Enough rows that each column's run store exceeds its write
        // buffer — the magic header must be on disk to corrupt it.
        let (points, labels) = demo_points(1200, m);
        let parent =
            std::env::temp_dir().join(format!("reds-stream-orphan-{}", std::process::id()));
        std::fs::create_dir_all(&parent).unwrap();
        let cfg = StreamConfig::new().with_spill_dir(&parent);
        let mut builder = PoolBuilder::new(m, &cfg).unwrap();
        builder.push_chunk(&points, &labels).unwrap();
        // Corrupt the *last* column's spilled run file so columns 0..2
        // merge (and hit the artifact) before the failure. In-place
        // write (no truncation) — the builder's handle stays valid.
        let spill_dir = std::fs::read_dir(&parent)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.is_dir())
            .expect("spill dir exists under the caller-provided parent");
        let run_file = spill_dir.join(format!("col{}.runs", m - 1));
        {
            use std::os::unix::fs::FileExt;
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(&run_file)
                .unwrap();
            assert!(
                f.metadata().unwrap().len() > 0,
                "run store has flushed bytes to corrupt"
            );
            f.write_at(&[0xff], 0).unwrap(); // break the run-store magic
        }
        let art_path = parent.join("pool.redsart");
        let err = builder.finish_art(&art_path, 16).unwrap_err();
        assert!(matches!(err, StreamError::CorruptSpill { .. }));
        assert!(
            !art_path.exists(),
            "failed merge left an orphaned artifact behind"
        );
        std::fs::remove_dir_all(&parent).unwrap();
    }

    #[test]
    fn nan_reports_the_global_row() {
        let m = 2;
        let mut builder = PoolBuilder::new(m, &StreamConfig::new()).unwrap();
        builder
            .push_chunk(&[0.1, 0.2, 0.3, 0.4], &[0.0, 1.0])
            .unwrap();
        let err = builder
            .push_chunk(&[0.5, f64::NAN], &[1.0])
            .expect_err("NaN must be rejected");
        assert!(matches!(err, StreamError::NanInPoint { row: 2, column: 1 }));
    }

    #[test]
    fn empty_builder_errors_instead_of_building_nothing() {
        let builder = PoolBuilder::new(2, &StreamConfig::new()).unwrap();
        assert!(matches!(builder.finish_pool(), Err(StreamError::ZeroRows)));
        let builder = PoolBuilder::new(2, &StreamConfig::new()).unwrap();
        assert!(matches!(builder.finish_stats(), Err(StreamError::ZeroRows)));
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let mut builder = PoolBuilder::new(3, &StreamConfig::new()).unwrap();
        assert!(matches!(
            builder.push_chunk(&[0.0; 7], &[0.0, 0.0]),
            Err(StreamError::ShapeMismatch { len: 7, m: 3 })
        ));
    }
}
