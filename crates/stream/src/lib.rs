//! `reds-stream`: bounded-memory streaming for `L ≫ 10⁶` pseudo-labels.
//!
//! The REDS pipeline's asymptotic win (§7 of the paper) only pays off
//! at scale, but the in-memory path materializes the full `L × M`
//! unlabeled pool before a single pseudo-label is computed, then
//! argsorts every column with `O(L)` scratch on top. This crate
//! replaces that with a pipeline whose working set is bounded by the
//! *chunk* size, not by `L`:
//!
//! 1. [`ChunkSource`] generates the unlabeled pool in deterministic
//!    chunks. [`SamplerSource`] chains one `StdRng` through
//!    element-sequential samplers, so **any** chunking (including
//!    chunk = 1 and chunk ≥ L) reproduces the monolithic draw sequence
//!    bit for bit.
//! 2. Each chunk is pseudo-labeled (`predict_batch` on the chunk —
//!    which dispatches to `reds_metamodel::kernels`' runtime-selected
//!    scalar/AVX2 backend, resolved once per chunk call, bit-identical
//!    either way) and
//!    folded into per-column accumulators: chunk-local radix argsort
//!    runs spilled to a temp-file run store ([`PoolBuilder`]), plus the
//!    raw points/labels appended to a data spill — no `L × M` buffer
//!    ever exists during construction.
//! 3. The spilled runs are k-way merged per column into exactly the
//!    `(value, row id)` total order of `reds_data::SortedView`, so
//!    PRIM / BestInterval / CART consume the result through the same
//!    membership-mask API with no algorithm changes
//!    (`SortedView::from_presorted_columns`).
//!
//! Spill files live in an RAII-guarded temp directory ([`SpillDir`])
//! that is removed on drop — including panics and early errors — and a
//! truncated or corrupted run surfaces as
//! [`StreamError::CorruptSpill`], never a panic.
//!
//! Equivalence contract: for any chunk size, [`stream_pool`] produces a
//! `Dataset` and `SortedView` bit-identical to the monolithic
//! generate-label-argsort path, and the generator RNG it hands back is
//! in the same state — so a full `discover_streaming` run is
//! bit-identical to `discover`.

#![warn(missing_docs)]

mod build;
mod pipeline;
mod source;
mod spill;

pub use build::{digest_pool, load_art_pool, PoolBuilder, StreamStats, StreamedPool};
pub use pipeline::{stream_art, stream_pool, stream_scan, Labeling};
pub use source::{ChunkSource, SamplerSource, SliceSource, StreamSampler};
pub use spill::SpillDir;

use std::fmt;
use std::path::PathBuf;

/// Default chunk size: 65 536 rows. At the paper's `M = 12` this is a
/// ~6 MiB point buffer per chunk — large enough that `predict_batch`
/// amortizes its fan-out, small enough that a laptop streams `L = 10⁷`
/// comfortably.
pub const DEFAULT_CHUNK_ROWS: usize = 65_536;

/// Configuration of the streaming pipeline.
#[derive(Debug, Clone, Default)]
pub struct StreamConfig {
    /// Rows per chunk. `0` (the `Default::default()` value) selects
    /// [`DEFAULT_CHUNK_ROWS`]; see
    /// [`StreamConfig::effective_chunk_rows`].
    pub chunk_rows: usize,
    /// Directory to create the spill directory in; `None` uses the
    /// system temp directory.
    pub spill_dir: Option<PathBuf>,
}

impl StreamConfig {
    /// Default configuration: [`DEFAULT_CHUNK_ROWS`] rows per chunk,
    /// spill under the system temp directory.
    pub fn new() -> Self {
        Self {
            chunk_rows: DEFAULT_CHUNK_ROWS,
            spill_dir: None,
        }
    }

    /// Sets the chunk size (rows per chunk).
    pub fn with_chunk_rows(mut self, chunk_rows: usize) -> Self {
        self.chunk_rows = chunk_rows;
        self
    }

    /// Sets the parent directory for spill files.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// The effective chunk size: configured value, `0` mapped to the
    /// default (so `StreamConfig::default()` works out of the box).
    pub fn effective_chunk_rows(&self) -> usize {
        if self.chunk_rows == 0 {
            DEFAULT_CHUNK_ROWS
        } else {
            self.chunk_rows
        }
    }
}

/// Errors of the streaming pipeline.
#[derive(Debug)]
pub enum StreamError {
    /// Filesystem failure on the spill store.
    Io(std::io::Error),
    /// A spilled sort run is truncated or internally inconsistent.
    CorruptSpill {
        /// Column whose run store is damaged.
        column: usize,
        /// What went wrong.
        detail: String,
    },
    /// The requested sampler is a *global* design (e.g. Latin
    /// hypercube / the mixed-inputs design): every stratum placement
    /// depends on the total row count, so it cannot be generated in
    /// bounded-memory chunks with the same result. Use the in-memory
    /// path for these designs.
    UnstreamableSampler {
        /// Human-readable design name.
        name: &'static str,
    },
    /// A pool buffer's length is not a multiple of the declared width.
    ShapeMismatch {
        /// Buffer length.
        len: usize,
        /// Declared number of columns.
        m: usize,
    },
    /// An input coordinate was NaN (datasets reject NaN coordinates).
    NanInPoint {
        /// Global row of the offending coordinate.
        row: usize,
        /// Column of the offending coordinate.
        column: usize,
    },
    /// More rows than the `u32` row ids of `SortedView` can address.
    TooManyRows {
        /// Requested row count.
        rows: usize,
    },
    /// The chunk predictor failed, or returned the wrong number of
    /// predictions for a chunk.
    Predict(String),
    /// The source produced no rows at all.
    ZeroRows,
    /// Final assembly of the dataset / sorted view failed.
    Data(reds_data::DataError),
    /// Writing or reading a `.redsart` column artifact failed.
    Art(reds_art::ArtError),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "spill store I/O failure: {e}"),
            Self::CorruptSpill { column, detail } => {
                write!(f, "corrupt spill run for column {column}: {detail}")
            }
            Self::UnstreamableSampler { name } => write!(
                f,
                "the {name} design is global (stratified over all L rows) and cannot \
                 be streamed in chunks; use the in-memory pipeline for it"
            ),
            Self::ShapeMismatch { len, m } => {
                write!(
                    f,
                    "pool buffer of {len} values is not a multiple of m = {m}"
                )
            }
            Self::NanInPoint { row, column } => {
                write!(f, "NaN input coordinate at row {row}, column {column}")
            }
            Self::TooManyRows { rows } => {
                write!(f, "{rows} rows exceed the u32 row-id space of SortedView")
            }
            Self::Predict(msg) => write!(f, "chunk prediction failed: {msg}"),
            Self::ZeroRows => write!(f, "the chunk source produced no rows"),
            Self::Data(e) => write!(f, "cannot assemble streamed pool: {e}"),
            Self::Art(e) => write!(f, "pool artifact failure: {e}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Data(e) => Some(e),
            Self::Art(e) => Some(e),
            _ => None,
        }
    }
}

impl From<reds_art::ArtError> for StreamError {
    fn from(e: reds_art::ArtError) -> Self {
        Self::Art(e)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<reds_data::DataError> for StreamError {
    fn from(e: reds_data::DataError) -> Self {
        Self::Data(e)
    }
}
