//! The streaming pseudo-labeling loop: source → predict → label → fold.

use crate::build::{PoolBuilder, StreamStats, StreamedPool};
use crate::{ChunkSource, StreamConfig, StreamError};

/// How raw metamodel outputs become pseudo-labels — must mirror the
/// in-memory pipeline's mapping exactly (Algorithm 4, lines 4–6; §6.1
/// for the probability variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Labeling {
    /// Hard labels `I(f^am(x) > bnd)`.
    Hard {
        /// Threshold `bnd` on the metamodel output.
        bnd: f64,
    },
    /// Raw probabilities clamped to `[0,1]` (the "p" variants).
    Probability,
}

impl Labeling {
    /// Maps one metamodel output to its pseudo-label.
    #[inline]
    pub fn apply(self, p: f64) -> f64 {
        match self {
            Self::Hard { bnd } => {
                if p > bnd {
                    1.0
                } else {
                    0.0
                }
            }
            Self::Probability => p.clamp(0.0, 1.0),
        }
    }
}

/// The type every chunk predictor conforms to: row-major points of the
/// declared width in, one raw metamodel output per row out. In-process
/// callers wrap `Metamodel::predict_batch`; the serving layer wraps its
/// micro-batching worker.
pub type ChunkPredict<'a> = dyn FnMut(&[f64], usize) -> Result<Vec<f64>, StreamError> + 'a;

fn drive(
    source: &mut dyn ChunkSource,
    predict: &mut ChunkPredict<'_>,
    labeling: Labeling,
    cfg: &StreamConfig,
) -> Result<PoolBuilder, StreamError> {
    let m = source.m();
    let chunk_rows = cfg.effective_chunk_rows();
    let mut builder = PoolBuilder::new(m, cfg)?;
    let mut chunk: Vec<f64> = Vec::new();
    let mut labels: Vec<f64> = Vec::new();
    loop {
        chunk.clear();
        let got = source.next_chunk(chunk_rows, &mut chunk);
        if got == 0 {
            break;
        }
        let preds = predict(&chunk, m)?;
        if preds.len() != got {
            return Err(StreamError::Predict(format!(
                "predictor returned {} values for a {got}-row chunk",
                preds.len()
            )));
        }
        labels.clear();
        labels.extend(preds.into_iter().map(|p| labeling.apply(p)));
        builder.push_chunk(&chunk, &labels)?;
    }
    if builder.rows() == 0 {
        return Err(StreamError::ZeroRows);
    }
    Ok(builder)
}

/// Streams the whole source through pseudo-labeling and the out-of-core
/// sort, materializing the final [`StreamedPool`]. Bit-identical to the
/// monolithic generate → `predict_batch` → `Dataset::new` →
/// `SortedView::new` path for **any** chunk size.
pub fn stream_pool(
    source: &mut dyn ChunkSource,
    predict: &mut ChunkPredict<'_>,
    labeling: Labeling,
    cfg: &StreamConfig,
) -> Result<StreamedPool, StreamError> {
    drive(source, predict, labeling, cfg)?.finish_pool()
}

/// Like [`stream_pool`] but finishes into a `.redsart` pool artifact
/// at `path` (merged columns + page-index fences at `page_rows`
/// records per page + dataset) without materializing anything of size
/// `O(L)` in memory — the construction half of the out-of-core
/// discovery path ([`crate::load_art_pool`] or `reds-ooc` read it
/// back).
pub fn stream_art(
    source: &mut dyn ChunkSource,
    predict: &mut ChunkPredict<'_>,
    labeling: Labeling,
    cfg: &StreamConfig,
    path: &std::path::Path,
    page_rows: u32,
) -> Result<StreamStats, StreamError> {
    drive(source, predict, labeling, cfg)?.finish_art(path, page_rows)
}

/// Like [`stream_pool`] but finishes into a digest + stats without
/// materializing anything of size `O(L)` — the bounded-memory witness
/// used by the peak-RSS benches.
pub fn stream_scan(
    source: &mut dyn ChunkSource,
    predict: &mut ChunkPredict<'_>,
    labeling: Labeling,
    cfg: &StreamConfig,
) -> Result<StreamStats, StreamError> {
    drive(source, predict, labeling, cfg)?.finish_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SamplerSource, SliceSource, StreamSampler};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use reds_data::{Dataset, SortedView};

    /// A cheap deterministic "metamodel": mean of the coordinates.
    fn toy_predict(points: &[f64], m: usize) -> Result<Vec<f64>, StreamError> {
        Ok(points
            .chunks_exact(m)
            .map(|row| row.iter().sum::<f64>() / m as f64)
            .collect())
    }

    fn monolithic_reference(
        l: usize,
        m: usize,
        seed: u64,
        labeling: Labeling,
    ) -> (Dataset, Vec<Vec<u32>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points = reds_sampling::uniform(l, m, &mut rng);
        let labels: Vec<f64> = toy_predict(&points, m)
            .unwrap()
            .into_iter()
            .map(|p| labeling.apply(p))
            .collect();
        let d = Dataset::new(points, labels, m).unwrap();
        let cols = SortedView::new(&d).into_columns();
        (d, cols)
    }

    #[test]
    fn stream_pool_matches_monolithic_for_odd_chunkings() {
        let (l, m, seed) = (311, 4, 21);
        let labeling = Labeling::Hard { bnd: 0.5 };
        let (ref_d, ref_cols) = monolithic_reference(l, m, seed, labeling);
        for chunk in [1usize, 3, 100, l, l + 1] {
            let mut source =
                SamplerSource::new(StreamSampler::Uniform, l, m, StdRng::seed_from_u64(seed));
            let cfg = StreamConfig::new().with_chunk_rows(chunk);
            let pool = stream_pool(&mut source, &mut toy_predict, labeling, &cfg).unwrap();
            assert_eq!(pool.dataset, ref_d, "chunk = {chunk}");
            for (j, ref_col) in ref_cols.iter().enumerate() {
                assert_eq!(pool.view.column(j), &ref_col[..], "chunk = {chunk}");
            }
        }
    }

    #[test]
    fn probability_labeling_streams_identically() {
        let (l, m, seed) = (97, 2, 5);
        let labeling = Labeling::Probability;
        let (ref_d, _) = monolithic_reference(l, m, seed, labeling);
        let mut source =
            SamplerSource::new(StreamSampler::Uniform, l, m, StdRng::seed_from_u64(seed));
        let cfg = StreamConfig::new().with_chunk_rows(10);
        let pool = stream_pool(&mut source, &mut toy_predict, labeling, &cfg).unwrap();
        assert_eq!(pool.dataset, ref_d);
    }

    #[test]
    fn slice_source_streams_a_caller_pool() {
        let m = 2;
        let pool_values: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64 / 17.0).collect();
        let labeling = Labeling::Hard { bnd: 0.4 };
        let labels: Vec<f64> = toy_predict(&pool_values, m)
            .unwrap()
            .into_iter()
            .map(|p| labeling.apply(p))
            .collect();
        let ref_d = Dataset::new(pool_values.clone(), labels, m).unwrap();
        let mut source = SliceSource::new(&pool_values, m).unwrap();
        let cfg = StreamConfig::new().with_chunk_rows(5);
        let streamed = stream_pool(&mut source, &mut toy_predict, labeling, &cfg).unwrap();
        assert_eq!(streamed.dataset, ref_d);
    }

    #[test]
    fn scan_digest_matches_pool_digest() {
        let (l, m, seed) = (250, 3, 8);
        let labeling = Labeling::Hard { bnd: 0.5 };
        let cfg = StreamConfig::new().with_chunk_rows(33);
        let mut source =
            SamplerSource::new(StreamSampler::Uniform, l, m, StdRng::seed_from_u64(seed));
        let stats = stream_scan(&mut source, &mut toy_predict, labeling, &cfg).unwrap();
        let (ref_d, ref_cols) = monolithic_reference(l, m, seed, labeling);
        assert_eq!(stats.digest, crate::digest_pool(&ref_cols, ref_d.labels()));
        assert_eq!(stats.rows, l as u64);
        assert_eq!(stats.runs_per_column, l.div_ceil(33));
    }

    #[test]
    fn predictor_length_mismatch_is_an_error() {
        let mut source =
            SamplerSource::new(StreamSampler::Uniform, 10, 2, StdRng::seed_from_u64(1));
        let mut bad = |_: &[f64], _: usize| Ok(vec![0.5; 3]);
        let err = stream_pool(
            &mut source,
            &mut bad,
            Labeling::Hard { bnd: 0.5 },
            &StreamConfig::new(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::Predict(_)));
    }

    #[test]
    fn empty_source_is_zero_rows() {
        let mut source = SamplerSource::new(StreamSampler::Uniform, 0, 2, StdRng::seed_from_u64(1));
        let err = stream_scan(
            &mut source,
            &mut toy_predict,
            Labeling::Hard { bnd: 0.5 },
            &StreamConfig::new(),
        )
        .unwrap_err();
        assert!(matches!(err, StreamError::ZeroRows));
    }
}
