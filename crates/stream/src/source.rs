//! Deterministic chunked generation of the unlabeled pool.
//!
//! The invariant every source upholds: the concatenation of the chunks
//! it produces is **independent of the chunking** — asking for the pool
//! in chunks of 1, of 64 k, or all at once yields the same row-major
//! buffer bit for bit. For [`SamplerSource`] this holds because the
//! streamable samplers draw from the RNG element-sequentially, so
//! splitting the generation loop cannot change any draw; the RNG the
//! source hands back afterwards is therefore in exactly the state the
//! monolithic `sample(L)` call would have left it in.

use rand::rngs::StdRng;

use crate::StreamError;

/// A source of unlabeled pool rows, delivered in chunks.
pub trait ChunkSource {
    /// Number of input columns per row.
    fn m(&self) -> usize;

    /// Rows this source will still produce.
    fn remaining(&self) -> usize;

    /// Appends up to `max_rows` rows (row-major) to `out` and returns
    /// the number of rows produced; `0` means the source is exhausted.
    fn next_chunk(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize;
}

/// The point distributions that can be generated chunk-wise with a
/// chunking-invariant draw sequence.
///
/// Latin-hypercube–based designs (the paper's mixed-inputs design among
/// them) are deliberately absent: they stratify over the *total* row
/// count, so no chunked generation can reproduce the monolithic design
/// — callers get [`StreamError::UnstreamableSampler`] instead of a
/// silently different pool.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamSampler {
    /// i.i.d. uniform on `[0,1)^M` — REDS's deep-uncertainty default
    /// (Algorithm 4, line 3).
    Uniform,
    /// i.i.d. logit-normal per coordinate (the semi-supervised
    /// experiments, §9.4).
    LogitNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
}

/// Chunked generation from a [`StreamSampler`], chaining one `StdRng`
/// across chunks.
#[derive(Debug)]
pub struct SamplerSource {
    sampler: StreamSampler,
    m: usize,
    remaining: usize,
    rng: StdRng,
}

impl SamplerSource {
    /// A source that will produce exactly `l` rows of width `m`,
    /// drawing from `rng`. Pass a clone of the pipeline RNG and install
    /// [`SamplerSource::into_rng`]'s result back after streaming to
    /// keep the caller's RNG stream identical to the monolithic path.
    pub fn new(sampler: StreamSampler, l: usize, m: usize, rng: StdRng) -> Self {
        Self {
            sampler,
            m,
            remaining: l,
            rng,
        }
    }

    /// The RNG after all draws so far — once the source is exhausted,
    /// bit-identical to the state after a monolithic `sample(l)` call.
    pub fn into_rng(self) -> StdRng {
        self.rng
    }
}

impl ChunkSource for SamplerSource {
    fn m(&self) -> usize {
        self.m
    }

    fn remaining(&self) -> usize {
        self.remaining
    }

    fn next_chunk(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize {
        let n = self.remaining.min(max_rows);
        if n == 0 {
            return 0;
        }
        // Both samplers consume the RNG element-sequentially, so
        // generating `n` rows now and the rest later replays exactly
        // the monolithic draw sequence.
        let chunk = match self.sampler {
            StreamSampler::Uniform => reds_sampling::uniform(n, self.m, &mut self.rng),
            StreamSampler::LogitNormal { mu, sigma } => {
                reds_sampling::logit_normal(n, self.m, mu, sigma, &mut self.rng)
            }
        };
        out.extend_from_slice(&chunk);
        self.remaining -= n;
        n
    }
}

/// Chunked reads from a caller-provided row-major pool — the
/// semi-supervised entry point (§9.4), where the unlabeled pool already
/// exists (e.g. real covariate records) and only the labeling and sort
/// must stream.
#[derive(Debug)]
pub struct SliceSource<'a> {
    pool: &'a [f64],
    m: usize,
    offset: usize,
}

impl<'a> SliceSource<'a> {
    /// Wraps `pool` (row-major, width `m`).
    ///
    /// # Errors
    ///
    /// [`StreamError::ShapeMismatch`] when the buffer length is not a
    /// multiple of `m` (or `m == 0`).
    pub fn new(pool: &'a [f64], m: usize) -> Result<Self, StreamError> {
        if m == 0 || !pool.len().is_multiple_of(m) {
            return Err(StreamError::ShapeMismatch { len: pool.len(), m });
        }
        Ok(Self { pool, m, offset: 0 })
    }
}

impl ChunkSource for SliceSource<'_> {
    fn m(&self) -> usize {
        self.m
    }

    fn remaining(&self) -> usize {
        (self.pool.len() - self.offset) / self.m
    }

    fn next_chunk(&mut self, max_rows: usize, out: &mut Vec<f64>) -> usize {
        let n = self.remaining().min(max_rows);
        if n == 0 {
            return 0;
        }
        let end = self.offset + n * self.m;
        out.extend_from_slice(&self.pool[self.offset..end]);
        self.offset = end;
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn drain(source: &mut dyn ChunkSource, chunk: usize) -> Vec<f64> {
        let mut all = Vec::new();
        while source.next_chunk(chunk, &mut all) > 0 {}
        all
    }

    #[test]
    fn uniform_chunking_is_invariant_and_matches_monolithic() {
        let l = 257;
        let m = 3;
        let monolithic = reds_sampling::uniform(l, m, &mut StdRng::seed_from_u64(9));
        for chunk in [1, 2, 7, 64, l, l + 13] {
            let mut src =
                SamplerSource::new(StreamSampler::Uniform, l, m, StdRng::seed_from_u64(9));
            let streamed = drain(&mut src, chunk);
            assert_eq!(streamed.len(), l * m);
            assert!(
                monolithic
                    .iter()
                    .zip(&streamed)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "chunk = {chunk} diverged from the monolithic draw"
            );
        }
    }

    #[test]
    fn logit_normal_chunking_matches_monolithic() {
        let l = 100;
        let m = 2;
        let monolithic = reds_sampling::logit_normal(l, m, 0.3, 1.2, &mut StdRng::seed_from_u64(4));
        let mut src = SamplerSource::new(
            StreamSampler::LogitNormal {
                mu: 0.3,
                sigma: 1.2,
            },
            l,
            m,
            StdRng::seed_from_u64(4),
        );
        let streamed = drain(&mut src, 17);
        assert!(monolithic
            .iter()
            .zip(&streamed)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn exhausted_source_leaves_rng_in_monolithic_state() {
        use rand::Rng;
        let mut mono_rng = StdRng::seed_from_u64(11);
        let _ = reds_sampling::uniform(83, 4, &mut mono_rng);
        let mut src = SamplerSource::new(StreamSampler::Uniform, 83, 4, StdRng::seed_from_u64(11));
        let mut sink = Vec::new();
        while src.next_chunk(10, &mut sink) > 0 {}
        let mut streamed_rng = src.into_rng();
        // The next draws agree — the streams are in the same state.
        for _ in 0..8 {
            assert_eq!(mono_rng.gen::<u64>(), streamed_rng.gen::<u64>());
        }
    }

    #[test]
    fn slice_source_round_trips_and_validates_shape() {
        let pool: Vec<f64> = (0..30).map(|i| i as f64 / 30.0).collect();
        let mut src = SliceSource::new(&pool, 3).expect("valid shape");
        assert_eq!(src.remaining(), 10);
        let got = drain(&mut src, 4);
        assert_eq!(got, pool);
        assert!(matches!(
            SliceSource::new(&pool, 4),
            Err(StreamError::ShapeMismatch { len: 30, m: 4 })
        ));
        assert!(matches!(
            SliceSource::new(&pool, 0),
            Err(StreamError::ShapeMismatch { .. })
        ));
    }
}
