//! Temp-file spill store for out-of-core sorting.
//!
//! Layout: one directory per streaming session ([`SpillDir`], removed
//! on drop — panics and early errors included), holding
//!
//! * `col<j>.runs` — the sorted runs of column `j`: a fixed header
//!   followed by 12-byte records `(key: u64 LE, row: u32 LE)`, one
//!   ascending `(key, row)` run per pushed chunk;
//! * `pool.points` / `pool.labels` — the raw row-major point buffer and
//!   the pseudo-labels, appended chunk by chunk as little-endian `f64`.
//!
//! Readers re-validate lengths against the writer's bookkeeping; any
//! mismatch (a truncated file, a foreign file, a bad header) surfaces
//! as [`StreamError::CorruptSpill`] instead of a panic or garbage data.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::StreamError;

/// Magic prefix of a run file (8 bytes, version-tagged).
const RUN_MAGIC: &[u8; 8] = b"RSRUNS01";
/// Magic prefix of the point / label spill files.
const POOL_MAGIC: &[u8; 8] = b"RSPOOL01";
/// Header size shared by all spill files: magic + 8 reserved bytes.
const HEADER_LEN: u64 = 16;
/// Bytes per sorted-run record: `u64` key + `u32` row id.
const RECORD_LEN: u64 = 12;

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// An RAII-guarded spill directory: created unique per streaming
/// session, removed (with everything in it) when dropped — whether the
/// pipeline finished, errored early, or panicked mid-chunk.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Creates a fresh spill directory under `parent` (the system temp
    /// directory when `None`).
    pub fn create_in(parent: Option<&Path>) -> Result<Self, StreamError> {
        let parent = parent
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        std::fs::create_dir_all(&parent)?;
        let pid = std::process::id();
        loop {
            let seq = SPILL_SEQ.fetch_add(1, Ordering::Relaxed);
            let candidate = parent.join(format!("reds-stream-{pid}-{seq}"));
            match std::fs::create_dir(&candidate) {
                Ok(()) => return Ok(Self { path: candidate }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The directory path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Best effort: cleanup must never turn an unwind into an abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn write_header(file: &mut impl Write, magic: &[u8; 8]) -> Result<(), StreamError> {
    file.write_all(magic)?;
    file.write_all(&[0u8; 8])?;
    Ok(())
}

fn check_header(reader: &mut impl Read, magic: &[u8; 8], column: usize) -> Result<(), StreamError> {
    let mut head = [0u8; HEADER_LEN as usize];
    reader
        .read_exact(&mut head)
        .map_err(|e| StreamError::CorruptSpill {
            column,
            detail: format!("header unreadable: {e}"),
        })?;
    if &head[..8] != magic {
        return Err(StreamError::CorruptSpill {
            column,
            detail: "bad magic — not a reds-stream spill file".to_string(),
        });
    }
    Ok(())
}

/// Writer for one column's sorted runs.
pub(crate) struct RunWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Record count of every completed run, in push order.
    run_lens: Vec<u64>,
    column: usize,
}

impl RunWriter {
    pub(crate) fn create(dir: &Path, column: usize) -> Result<Self, StreamError> {
        let path = dir.join(format!("col{column}.runs"));
        let mut writer = BufWriter::new(File::create(&path)?);
        write_header(&mut writer, RUN_MAGIC)?;
        Ok(Self {
            path,
            writer,
            run_lens: Vec::new(),
            column,
        })
    }

    /// Appends one ascending `(key, row)` run.
    pub(crate) fn push_run(
        &mut self,
        records: impl Iterator<Item = (u64, u32)>,
    ) -> Result<(), StreamError> {
        let mut n = 0u64;
        let mut buf = [0u8; RECORD_LEN as usize];
        for (key, row) in records {
            buf[..8].copy_from_slice(&key.to_le_bytes());
            buf[8..].copy_from_slice(&row.to_le_bytes());
            self.writer.write_all(&buf)?;
            n += 1;
        }
        if n > 0 {
            self.run_lens.push(n);
        }
        Ok(())
    }

    /// Flushes and reopens the runs for merging.
    pub(crate) fn into_runs(mut self) -> Result<ColumnRuns, StreamError> {
        self.writer.flush()?;
        drop(self.writer);
        let total: u64 = self.run_lens.iter().sum();
        let expected = HEADER_LEN + total * RECORD_LEN;
        let actual = std::fs::metadata(&self.path)?.len();
        if actual != expected {
            return Err(StreamError::CorruptSpill {
                column: self.column,
                detail: format!("file is {actual} bytes, expected {expected}"),
            });
        }
        Ok(ColumnRuns {
            path: self.path,
            run_lens: self.run_lens,
            column: self.column,
        })
    }
}

/// A column's completed run store, ready for merging.
#[derive(Debug)]
pub(crate) struct ColumnRuns {
    path: PathBuf,
    run_lens: Vec<u64>,
    column: usize,
}

struct RunCursor {
    reader: BufReader<File>,
    remaining: u64,
}

impl ColumnRuns {
    pub(crate) fn run_count(&self) -> usize {
        self.run_lens.len()
    }

    pub(crate) fn total_rows(&self) -> u64 {
        self.run_lens.iter().sum()
    }

    pub(crate) fn spilled_bytes(&self) -> u64 {
        HEADER_LEN + self.total_rows() * RECORD_LEN
    }

    fn read_record(&self, cursor: &mut RunCursor) -> Result<(u64, u32), StreamError> {
        let mut buf = [0u8; RECORD_LEN as usize];
        cursor
            .reader
            .read_exact(&mut buf)
            .map_err(|e| StreamError::CorruptSpill {
                column: self.column,
                detail: format!("run truncated mid-record: {e}"),
            })?;
        let key = u64::from_le_bytes(buf[..8].try_into().expect("8-byte slice"));
        let row = u32::from_le_bytes(buf[8..].try_into().expect("4-byte slice"));
        Ok((key, row))
    }

    /// K-way merges the runs in ascending `(key, row)` order, calling
    /// `emit(row, key)` once per record.
    ///
    /// Each run was written ascending by `(key, local rank)` with
    /// globally increasing row ids across runs, so an ordinary binary
    /// heap on `(key, row)` reproduces **exactly** the order a
    /// monolithic `(key, row)` argsort would — including every tie.
    pub(crate) fn merge(&self, mut emit: impl FnMut(u32, u64)) -> Result<(), StreamError> {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        // Validate the header once (catches foreign / clobbered files).
        let mut head_file = File::open(&self.path)?;
        check_header(&mut head_file, RUN_MAGIC, self.column)?;
        drop(head_file);

        // One bounded reader per run; memory is O(runs), not O(rows).
        let mut cursors = Vec::with_capacity(self.run_lens.len());
        let mut offset = HEADER_LEN;
        for &len in &self.run_lens {
            let mut file = File::open(&self.path)?;
            file.seek(SeekFrom::Start(offset))?;
            cursors.push(RunCursor {
                reader: BufReader::with_capacity(32 * 1024, file),
                remaining: len,
            });
            offset += len * RECORD_LEN;
        }
        let mut heap: BinaryHeap<Reverse<(u64, u32, usize)>> = BinaryHeap::new();
        for (i, cursor) in cursors.iter_mut().enumerate() {
            if cursor.remaining > 0 {
                cursor.remaining -= 1;
                let (key, row) = self.read_record(cursor)?;
                heap.push(Reverse((key, row, i)));
            }
        }
        while let Some(Reverse((key, row, i))) = heap.pop() {
            emit(row, key);
            let cursor = &mut cursors[i];
            if cursor.remaining > 0 {
                cursor.remaining -= 1;
                let (key, row) = self.read_record(cursor)?;
                heap.push(Reverse((key, row, i)));
            }
        }
        Ok(())
    }
}

/// Append-only spill of `f64` values (the raw points or the labels).
pub(crate) struct FloatSpill {
    path: PathBuf,
    writer: BufWriter<File>,
    values: u64,
}

impl FloatSpill {
    pub(crate) fn create(dir: &Path, name: &str) -> Result<Self, StreamError> {
        let path = dir.join(name);
        let mut writer = BufWriter::new(File::create(&path)?);
        write_header(&mut writer, POOL_MAGIC)?;
        Ok(Self {
            path,
            writer,
            values: 0,
        })
    }

    pub(crate) fn append(&mut self, values: &[f64]) -> Result<(), StreamError> {
        for &v in values {
            self.writer.write_all(&v.to_le_bytes())?;
        }
        self.values += values.len() as u64;
        Ok(())
    }

    pub(crate) fn spilled_bytes(&self) -> u64 {
        HEADER_LEN + self.values * 8
    }

    /// Flushes and reads the whole spill back (bit-exact round trip) —
    /// the final materialization step, after the bounded-memory phase.
    pub(crate) fn into_vec(mut self) -> Result<Vec<f64>, StreamError> {
        self.writer.flush()?;
        drop(self.writer);
        let expected = HEADER_LEN + self.values * 8;
        let actual = std::fs::metadata(&self.path)?.len();
        if actual != expected {
            return Err(StreamError::CorruptSpill {
                column: 0,
                detail: format!(
                    "pool spill {} is {actual} bytes, expected {expected}",
                    self.path.display()
                ),
            });
        }
        let mut reader = BufReader::with_capacity(256 * 1024, File::open(&self.path)?);
        check_header(&mut reader, POOL_MAGIC, 0)?;
        let mut out = Vec::with_capacity(self.values as usize);
        let mut buf = [0u8; 8];
        for _ in 0..self.values {
            reader
                .read_exact(&mut buf)
                .map_err(|e| StreamError::CorruptSpill {
                    column: 0,
                    detail: format!("pool spill truncated: {e}"),
                })?;
            out.push(f64::from_le_bytes(buf));
        }
        Ok(out)
    }

    /// Flushes and streams the values through `visit` without
    /// materializing them (digest mode).
    pub(crate) fn for_each(mut self, mut visit: impl FnMut(f64)) -> Result<(), StreamError> {
        self.writer.flush()?;
        drop(self.writer);
        let mut reader = BufReader::with_capacity(256 * 1024, File::open(&self.path)?);
        check_header(&mut reader, POOL_MAGIC, 0)?;
        let mut buf = [0u8; 8];
        for _ in 0..self.values {
            reader
                .read_exact(&mut buf)
                .map_err(|e| StreamError::CorruptSpill {
                    column: 0,
                    detail: format!("pool spill truncated: {e}"),
                })?;
            visit(f64::from_le_bytes(buf));
        }
        Ok(())
    }

    #[cfg(test)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_dir_is_removed_on_drop() {
        let dir = SpillDir::create_in(None).expect("create");
        let path = dir.path().to_path_buf();
        std::fs::write(path.join("junk"), b"x").unwrap();
        assert!(path.is_dir());
        drop(dir);
        assert!(!path.exists(), "spill dir must be cleaned up");
    }

    #[test]
    fn spill_dir_is_removed_when_the_pipeline_panics() {
        let observed = std::panic::catch_unwind(|| {
            let dir = SpillDir::create_in(None).expect("create");
            let path = dir.path().to_path_buf();
            std::fs::write(path.join("run"), b"data").unwrap();
            panic!("mid-stream failure at {}", path.display());
        });
        let err = observed.expect_err("the closure panics");
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload carries the path");
        let path = PathBuf::from(msg.rsplit_once(" at ").expect("marker").1);
        assert!(!path.exists(), "unwinding must remove the spill dir");
    }

    #[test]
    fn runs_merge_in_global_key_row_order() {
        let dir = SpillDir::create_in(None).unwrap();
        let mut writer = RunWriter::create(dir.path(), 0).unwrap();
        // Two runs with interleaved keys and a cross-run tie on key 5.
        writer
            .push_run([(1u64, 0u32), (5, 2), (9, 1)].into_iter())
            .unwrap();
        writer
            .push_run([(2u64, 3u32), (5, 4), (5, 5)].into_iter())
            .unwrap();
        let runs = writer.into_runs().unwrap();
        assert_eq!(runs.run_count(), 2);
        assert_eq!(runs.total_rows(), 6);
        let mut order = Vec::new();
        runs.merge(|row, _key| order.push(row)).unwrap();
        assert_eq!(order, vec![0, 3, 2, 4, 5, 1]);
    }

    #[test]
    fn truncated_run_is_a_structured_error_not_a_panic() {
        let dir = SpillDir::create_in(None).unwrap();
        let mut writer = RunWriter::create(dir.path(), 3).unwrap();
        writer.push_run((0..100u64).map(|i| (i, i as u32))).unwrap();
        let path = dir.path().join("col3.runs");
        let runs = writer.into_runs().unwrap();
        // Chop the tail off after the writer's bookkeeping was taken.
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(HEADER_LEN + 50 * RECORD_LEN + 5).unwrap();
        drop(file);
        let err = runs.merge(|_, _| {}).unwrap_err();
        match err {
            StreamError::CorruptSpill { column: 3, detail } => {
                assert!(detail.contains("truncated"), "{detail}");
            }
            other => panic!("expected CorruptSpill, got {other}"),
        }
    }

    #[test]
    fn length_mismatch_is_detected_at_reopen() {
        let dir = SpillDir::create_in(None).unwrap();
        let mut writer = RunWriter::create(dir.path(), 1).unwrap();
        writer.push_run([(7u64, 0u32)].into_iter()).unwrap();
        let path = dir.path().join("col1.runs");
        writer.writer.flush().unwrap();
        std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap()
            .write_all(b"garbage")
            .unwrap();
        let err = writer.into_runs().unwrap_err();
        assert!(matches!(err, StreamError::CorruptSpill { column: 1, .. }));
    }

    #[test]
    fn foreign_file_fails_the_magic_check() {
        let dir = SpillDir::create_in(None).unwrap();
        let path = dir.path().join("col0.runs");
        let mut writer = RunWriter::create(dir.path(), 0).unwrap();
        writer.push_run([(1u64, 0u32)].into_iter()).unwrap();
        let runs = writer.into_runs().unwrap();
        // Overwrite the header with a foreign magic, keep the length.
        let mut file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.write_all(b"NOTREDS!").unwrap();
        drop(file);
        let err = runs.merge(|_, _| {}).unwrap_err();
        assert!(matches!(err, StreamError::CorruptSpill { column: 0, .. }));
    }

    #[test]
    fn float_spill_round_trips_bits() {
        let dir = SpillDir::create_in(None).unwrap();
        let mut spill = FloatSpill::create(dir.path(), "pool.points").unwrap();
        let values = [0.1, -0.0, f64::INFINITY, 1e-300, 42.0];
        spill.append(&values).unwrap();
        spill.append(&values[..2]).unwrap();
        let back = spill.into_vec().unwrap();
        assert_eq!(back.len(), 7);
        for (a, b) in values.iter().chain(&values[..2]).zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncated_float_spill_is_a_structured_error() {
        let dir = SpillDir::create_in(None).unwrap();
        let mut spill = FloatSpill::create(dir.path(), "pool.labels").unwrap();
        spill.append(&vec![1.0; 64]).unwrap();
        spill.writer.flush().unwrap();
        let path = spill.path().to_path_buf();
        let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        file.set_len(HEADER_LEN + 10).unwrap();
        drop(file);
        assert!(matches!(
            spill.into_vec(),
            Err(StreamError::CorruptSpill { .. })
        ));
    }
}
