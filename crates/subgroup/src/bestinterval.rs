//! The BestInterval (BI) algorithm of Mampaey, Nijssen, Feelders &
//! Knobbe (2012) — Algorithm 3 of the paper: beam search over hyperboxes
//! maximising Weighted Relative Accuracy, refining one dimension at a
//! time with an exact linear-time best-interval subroutine.
//!
//! For a fixed dataset, `WRAcc(B) = (n⁺_B − n_B · N⁺/N) / N`, so the best
//! interval along a dimension is the contiguous value range maximising
//! `Σ (y_i − N⁺/N)` over the covered points — a maximum-sum subarray
//! problem solved by Kadane's algorithm over the value-sorted points
//! (ties grouped so the interval never splits equal values).
//!
//! Every dimension is argsorted **once** per `discover` call (a
//! [`SortedView`]); each beam refinement then scans its presorted
//! column linearly instead of re-sorting the covered points —
//! `O(M·N)` per refinement instead of `O(M·N log N)`.

use rand::rngs::StdRng;
use reds_data::{ColumnAccess, Dataset, SortedView, ViewAccess};

use crate::{HyperBox, SdResult, SubgroupDiscovery};

/// BI hyperparameters (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct BiParams {
    /// Maximum number of restricted inputs (`m`, "depth"); `None` = all.
    pub max_restricted: Option<usize>,
    /// Beam size `bs` (paper uses 1 and 5).
    pub beam_size: usize,
    /// Safety cap on beam iterations.
    pub max_iterations: usize,
}

impl Default for BiParams {
    fn default() -> Self {
        Self {
            max_restricted: None,
            beam_size: 1,
            max_iterations: 64,
        }
    }
}

/// The BI beam-search algorithm.
#[derive(Debug, Clone, Default)]
pub struct BestInterval {
    params: BiParams,
}

impl BestInterval {
    /// Creates BI with the given hyperparameters.
    pub fn new(params: BiParams) -> Self {
        assert!(params.beam_size > 0, "beam size must be positive");
        Self { params }
    }

    /// WRAcc of `b` over the store's rows: a full sequential row scan,
    /// accumulating `(n, n⁺)` in ascending row order — the association
    /// of [`HyperBox::count`] on the materialized pool.
    fn wracc(b: &HyperBox, store: &mut dyn ColumnAccess, pos_rate: f64) -> f64 {
        let mut n = 0.0;
        let mut np = 0.0;
        store.scan_rows(&mut |_, point, label| {
            if b.contains(point) {
                n += 1.0;
                np += label;
            }
        });
        (np - n * pos_rate) / store.n_rows() as f64
    }

    /// The exact best WRAcc refinement of `b` along `dim`: the interval
    /// maximising the sum of centred labels over points that satisfy all
    /// *other* dimension constraints. Scans the presorted column of
    /// `dim` — no per-refinement sort.
    fn best_interval(
        b: &HyperBox,
        store: &mut dyn ColumnAccess,
        dim: usize,
        pos_rate: f64,
    ) -> HyperBox {
        // Points inside the box with `dim` relaxed.
        let mut slab = b.clone();
        slab.set_lower(dim, f64::NEG_INFINITY);
        slab.set_upper(dim, f64::INFINITY);
        // Group ties on the fly: the column is already value-sorted, and
        // an interval boundary cannot separate equal values.
        let mut groups: Vec<(f64, f64)> = Vec::new();
        store.scan_column_points(dim, &mut |v, _row, point, label| {
            if !slab.contains(point) {
                return;
            }
            let w = label - pos_rate;
            match groups.last_mut() {
                Some((gv, gw)) if *gv == v => *gw += w,
                _ => groups.push((v, w)),
            }
        });
        if groups.is_empty() {
            return b.clone();
        }
        // Kadane over groups, tracking the value range of the best run.
        let mut best_sum = f64::NEG_INFINITY;
        let mut best_range = (groups[0].0, groups[0].0);
        let mut run_sum = 0.0;
        let mut run_start = 0usize;
        for (idx, &(v, w)) in groups.iter().enumerate() {
            if run_sum <= 0.0 {
                run_sum = w;
                run_start = idx;
            } else {
                run_sum += w;
            }
            if run_sum > best_sum {
                best_sum = run_sum;
                best_range = (groups[run_start].0, v);
            }
        }
        let mut refined = b.clone();
        // The refinement replaces this dimension's bounds; when the best
        // interval spans all observed values the dimension stays
        // unrestricted (equivalently: BI never restricts without gain).
        if best_range.0 > groups[0].0 {
            refined.set_lower(dim, best_range.0);
        } else {
            refined.set_lower(dim, f64::NEG_INFINITY);
        }
        if best_range.1 < groups[groups.len() - 1].0 {
            refined.set_upper(dim, best_range.1);
        } else {
            refined.set_upper(dim, f64::INFINITY);
        }
        refined
    }
}

impl BestInterval {
    /// The beam search against any [`ColumnAccess`] backing — the
    /// single implementation behind the in-memory path ([`ViewAccess`])
    /// and the out-of-core paged store. BI never deactivates rows, so
    /// the store must be handed in fresh (every row active).
    fn search_store(&self, store: &mut dyn ColumnAccess) -> SdResult {
        let m = store.m();
        let max_restricted = self.params.max_restricted.unwrap_or(m).min(m);
        let start = HyperBox::unbounded(m);
        if store.n_rows() == 0 {
            return SdResult { boxes: vec![start] };
        }
        // With every row active this is `Σ labels / N` summed in
        // ascending row order — bitwise `Dataset::pos_rate`.
        let pos_rate = store.active_label_sum() / store.n_rows() as f64;
        let mut beam: Vec<HyperBox> = vec![start];
        for _ in 0..self.params.max_iterations {
            // Candidate pool: current beam plus every one-dimension
            // refinement obeying the depth limit (Algorithm 3, lines 5–12).
            let mut candidates: Vec<HyperBox> = beam.clone();
            for b in &beam {
                for dim in 0..m {
                    let refined = Self::best_interval(b, store, dim, pos_rate);
                    if refined.n_restricted() <= max_restricted
                        && candidates.iter().all(|c| c.bounds() != refined.bounds())
                    {
                        candidates.push(refined);
                    }
                }
            }
            // WRAcc of each candidate is a full pool scan, so score once
            // and stable-sort on the cached values — the permutation a
            // comparator recomputing WRAcc would produce, at a fraction
            // of the scans.
            let mut scored: Vec<(HyperBox, f64)> = candidates
                .into_iter()
                .map(|c| {
                    let w = Self::wracc(&c, store, pos_rate);
                    (c, w)
                })
                .collect();
            scored.sort_by(|a, b| b.1.total_cmp(&a.1));
            scored.truncate(self.params.beam_size);
            let candidates: Vec<HyperBox> = scored.into_iter().map(|(c, _)| c).collect();
            if candidates == beam {
                break;
            }
            beam = candidates;
        }
        SdResult {
            boxes: vec![beam.into_iter().next().expect("beam is never empty")],
        }
    }

    /// The beam search on an externally built [`SortedView`] of `d` —
    /// shared by [`SubgroupDiscovery::discover`] (which argsorts here)
    /// and [`SubgroupDiscovery::discover_presorted`] (which reuses the
    /// streaming pipeline's out-of-core merge).
    fn search(&self, d: &Dataset, view: SortedView) -> SdResult {
        let mut store = ViewAccess::new(d, view);
        self.search_store(&mut store)
    }
}

impl SubgroupDiscovery for BestInterval {
    fn discover(&self, d: &Dataset, _d_val: &Dataset, _rng: &mut StdRng) -> SdResult {
        self.search(d, SortedView::new(d))
    }

    fn discover_presorted(
        &self,
        d: &Dataset,
        view: SortedView,
        _d_val: &Dataset,
        _rng: &mut StdRng,
    ) -> SdResult {
        self.search(d, view)
    }

    fn discover_paged(
        &self,
        store: &mut dyn ColumnAccess,
        _d_val: &Dataset,
        _rng: &mut StdRng,
    ) -> Option<SdResult> {
        Some(self.search_store(store))
    }

    fn name(&self) -> &'static str {
        "BI"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn band_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            if x[0] > 0.3 && x[0] < 0.7 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn bi_returns_a_single_box_with_positive_wracc() {
        let d = band_data(500, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
        let b = &result.boxes[0];
        let (n, np) = b.count(&d);
        let wracc = (np - n * d.pos_rate()) / d.n() as f64;
        assert!(wracc > 0.05, "WRAcc {wracc}");
    }

    #[test]
    fn bi_recovers_interior_interval() {
        let d = band_data(800, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        let b = &result.boxes[0];
        let (l0, r0) = b.bound(0);
        assert!((l0 - 0.3).abs() < 0.08, "x0 lower {l0}");
        assert!((r0 - 0.7).abs() < 0.08, "x0 upper {r0}");
        let (l1, r1) = b.bound(1);
        assert!((l1 - 0.5).abs() < 0.08, "x1 lower {l1}");
        assert_eq!(r1, f64::INFINITY, "x1 upper should stay open");
    }

    #[test]
    fn depth_limit_caps_restrictions() {
        let d = band_data(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let bi = BestInterval::new(BiParams {
            max_restricted: Some(1),
            ..Default::default()
        });
        let result = bi.discover(&d, &d, &mut rng);
        assert!(result.boxes[0].n_restricted() <= 1);
    }

    #[test]
    fn wider_beam_never_hurts_wracc() {
        let d = band_data(400, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let mut wracc_of = |bs: usize| {
            let bi = BestInterval::new(BiParams {
                beam_size: bs,
                ..Default::default()
            });
            let result = bi.discover(&d, &d, &mut rng);
            let b = &result.boxes[0];
            let (n, np) = b.count(&d);
            (np - n * d.pos_rate()) / d.n() as f64
        };
        assert!(wracc_of(5) >= wracc_of(1) - 1e-9);
    }

    #[test]
    fn uniform_labels_keep_the_box_unrestricted() {
        let mut rng = StdRng::seed_from_u64(9);
        let d = Dataset::from_fn((0..200).map(|_| rng.gen::<f64>()).collect(), 2, |_| 1.0).unwrap();
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        // With all labels equal, no interval improves WRAcc beyond 0.
        assert_eq!(result.boxes[0].n_restricted(), 0);
    }

    #[test]
    fn empty_data_is_handled() {
        let d = Dataset::empty(3).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
    }

    #[test]
    fn discover_paged_over_a_view_matches_discover_bitwise() {
        for seed in 0..4 {
            let d = band_data(300, 20 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let bi = BestInterval::new(BiParams {
                beam_size: 3,
                ..Default::default()
            });
            let direct = bi.discover(&d, &d, &mut rng);
            let mut store = ViewAccess::new(&d, SortedView::new(&d));
            let mut rng = StdRng::seed_from_u64(seed);
            let paged = bi
                .discover_paged(&mut store, &d, &mut rng)
                .expect("BI always supports the paged path");
            assert_eq!(direct.boxes, paged.boxes, "seed {seed}");
        }
    }

    #[test]
    fn kadane_groups_ties_correctly() {
        // Discrete x with a positive middle level; the interval must
        // cover the whole level, never split it.
        let points = vec![0.1, 0.1, 0.5, 0.5, 0.5, 0.9, 0.9];
        let labels = vec![0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0];
        let d = Dataset::new(points, labels, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        let (l, r) = result.boxes[0].bound(0);
        assert_eq!((l, r), (0.5, 0.5));
    }
}
