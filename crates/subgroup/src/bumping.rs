//! PRIM with bumping (Kwakkel & Cunningham 2016) — Algorithm 2 of the
//! paper: run PRIM `Q` times on bootstrap samples restricted to random
//! feature subsets, pool every trajectory box, and keep only the boxes
//! that are Pareto-optimal in (precision, recall) on the validation data.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use reds_data::{bootstrap_sample, Dataset};

use crate::{HyperBox, Prim, PrimParams, SdResult, SubgroupDiscovery};

/// Hyperparameters of PRIM with bumping (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimBumpingParams {
    /// Parameters of the inner PRIM runs.
    pub prim: PrimParams,
    /// Number of bootstrap repetitions `Q` (paper default 50).
    pub q: usize,
    /// Number of inputs `m` in each random feature subset;
    /// `None` = all inputs.
    pub m_features: Option<usize>,
}

impl Default for PrimBumpingParams {
    fn default() -> Self {
        Self {
            prim: PrimParams::default(),
            q: 50,
            m_features: None,
        }
    }
}

/// PRIM with bumping.
#[derive(Debug, Clone, Default)]
pub struct PrimBumping {
    params: PrimBumpingParams,
}

impl PrimBumping {
    /// Creates the algorithm with the given hyperparameters.
    pub fn new(params: PrimBumpingParams) -> Self {
        assert!(params.q > 0, "need at least one bootstrap repetition");
        Self { params }
    }
}

/// Keeps the boxes not dominated by any other box in (precision, recall)
/// on `d_val` (Definition 1), ordered by decreasing recall.
fn pareto_filter(boxes: Vec<HyperBox>, d_val: &Dataset) -> Vec<HyperBox> {
    let n_pos_total = d_val.n_pos();
    let scored: Vec<(HyperBox, f64, f64)> = boxes
        .into_iter()
        .map(|b| {
            let (n, np) = b.count(d_val);
            let precision = if n > 0.0 { np / n } else { 0.0 };
            let recall = if n_pos_total > 0.0 {
                np / n_pos_total
            } else {
                0.0
            };
            (b, precision, recall)
        })
        .collect();
    let mut keep: Vec<(HyperBox, f64, f64)> = Vec::new();
    for (b, p, r) in scored.iter().cloned() {
        let dominated = scored
            .iter()
            .any(|(_, op, or)| *op >= p && *or >= r && (*op > p || *or > r));
        if dominated {
            continue;
        }
        // Deduplicate identical bound sets (bootstrap runs often rediscover
        // the same box).
        if keep.iter().all(|(kb, _, _)| kb.bounds() != b.bounds()) {
            keep.push((b, p, r));
        }
    }
    keep.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.1.total_cmp(&b.1)));
    keep.into_iter().map(|(b, _, _)| b).collect()
}

impl SubgroupDiscovery for PrimBumping {
    fn discover(&self, d: &Dataset, d_val: &Dataset, rng: &mut StdRng) -> SdResult {
        let m_full = d.m();
        let m_sub = self.params.m_features.unwrap_or(m_full).clamp(1, m_full);
        let prim = Prim::new(self.params.prim.clone());
        let mut all_boxes: Vec<HyperBox> = Vec::new();
        let mut columns: Vec<usize> = (0..m_full).collect();
        for _ in 0..self.params.q {
            let bs = bootstrap_sample(d, rng);
            columns.shuffle(rng);
            let mut subset = columns[..m_sub].to_vec();
            subset.sort_unstable();
            let projected = bs
                .select_columns(&subset)
                .expect("subset indices are valid by construction");
            let mut run_rng = StdRng::seed_from_u64(rng.gen());
            let result = prim.discover(&projected, &projected, &mut run_rng);
            all_boxes.extend(result.boxes.into_iter().map(|b| b.embed(&subset, m_full)));
        }
        let boxes = pareto_filter(all_boxes, d_val);
        debug_assert!(!boxes.is_empty());
        SdResult { boxes }
    }

    fn name(&self) -> &'static str {
        "PB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 4).map(|_| rng.gen::<f64>()).collect(), 4, |x| {
            if x[0] > 0.5 && x[1] > 0.5 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    fn small_params() -> PrimBumpingParams {
        PrimBumpingParams {
            q: 10,
            ..Default::default()
        }
    }

    #[test]
    fn bumping_returns_a_pareto_front() {
        let d = corner_data(400, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = PrimBumping::new(small_params()).discover(&d, &d, &mut rng);
        assert!(!result.boxes.is_empty());
        // Verify pairwise non-domination on the validation data.
        let n_pos = d.n_pos();
        let scores: Vec<(f64, f64)> = result
            .boxes
            .iter()
            .map(|b| {
                let (n, np) = b.count(&d);
                (if n > 0.0 { np / n } else { 0.0 }, np / n_pos)
            })
            .collect();
        for (i, &(p1, r1)) in scores.iter().enumerate() {
            for (j, &(p2, r2)) in scores.iter().enumerate() {
                if i != j {
                    let dominated = p2 >= p1 && r2 >= r1 && (p2 > p1 || r2 > r1);
                    assert!(!dominated, "box {i} dominated by {j}");
                }
            }
        }
    }

    #[test]
    fn feature_subsets_restrict_box_dimensions() {
        let d = corner_data(300, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let params = PrimBumpingParams {
            m_features: Some(2),
            q: 8,
            ..Default::default()
        };
        let result = PrimBumping::new(params).discover(&d, &d, &mut rng);
        for b in &result.boxes {
            assert!(b.n_restricted() <= 2, "box restricts {}", b.n_restricted());
        }
    }

    #[test]
    fn recall_ordering_resembles_a_trajectory() {
        let d = corner_data(400, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let result = PrimBumping::new(small_params()).discover(&d, &d, &mut rng);
        let n_pos = d.n_pos();
        let recalls: Vec<f64> = result.boxes.iter().map(|b| b.count(&d).1 / n_pos).collect();
        for w in recalls.windows(2) {
            assert!(w[0] >= w[1] - 1e-12, "recalls not descending: {recalls:?}");
        }
    }

    #[test]
    fn bumping_precision_is_competitive() {
        let d = corner_data(500, 7);
        let test = corner_data(2000, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let result = PrimBumping::new(small_params()).discover(&d, &d, &mut rng);
        let best_precision = result
            .boxes
            .iter()
            .filter_map(|b| b.mean_inside(&test))
            .fold(0.0f64, f64::max);
        assert!(best_precision > 0.85, "best precision {best_precision}");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = corner_data(200, 10);
        let a = PrimBumping::new(small_params()).discover(&d, &d, &mut StdRng::seed_from_u64(11));
        let b = PrimBumping::new(small_params()).discover(&d, &d, &mut StdRng::seed_from_u64(11));
        assert_eq!(a.boxes.len(), b.boxes.len());
        for (x, y) in a.boxes.iter().zip(&b.boxes) {
            assert_eq!(x.bounds(), y.bounds());
        }
    }
}
