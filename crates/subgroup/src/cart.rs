//! CART-based scenario discovery — the classic comparator of Lempert,
//! Bryant & Bankes (2008), *Comparing algorithms for scenario discovery*
//! ([61] in the paper, §2.1): fit a classification tree and read
//! scenarios off its high-precision leaves.
//!
//! Unlike PRIM's patient peeling, CART splits greedily and produces a
//! partition; the scenario boxes are the leaves ordered by purity. The
//! first box of the returned sequence is the highest-recall leaf, the
//! last the highest-precision one, so the output plugs into the same
//! trajectory metrics as PRIM.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds_data::{Dataset, SortedView};
use reds_metamodel::{RegressionTree, TreeParams};

use crate::{HyperBox, SdResult, SubgroupDiscovery};

/// Hyperparameters of CART scenario discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct CartSdParams {
    /// Maximum tree depth — bounds `#restricted` of every leaf box.
    pub max_depth: usize,
    /// Minimum samples per leaf (CART's pruning surrogate; Lempert et
    /// al. use cost-complexity pruning, min-leaf achieves the same
    /// support control).
    pub min_samples_leaf: usize,
}

impl Default for CartSdParams {
    fn default() -> Self {
        Self {
            max_depth: 6,
            min_samples_leaf: 20,
        }
    }
}

/// CART scenario discovery.
#[derive(Debug, Clone, Default)]
pub struct CartSd {
    params: CartSdParams,
}

impl CartSd {
    /// Creates the algorithm with the given hyperparameters.
    pub fn new(params: CartSdParams) -> Self {
        Self { params }
    }
}

impl CartSd {
    fn tree_params(&self) -> TreeParams {
        TreeParams {
            max_depth: self.params.max_depth,
            min_samples_leaf: self.params.min_samples_leaf,
            min_samples_split: 2 * self.params.min_samples_leaf,
            mtry: None,
        }
    }

    /// Reads the scenario boxes off a fitted tree's leaves.
    fn boxes_from_tree(d: &Dataset, tree: &RegressionTree) -> SdResult {
        let m = d.m();
        // Leaves with above-base-rate purity, best (purest) last.
        let base_rate = d.pos_rate();
        let mut leaves: Vec<(HyperBox, f64)> = tree
            .leaf_regions()
            .into_iter()
            .filter(|(_, value)| *value > base_rate)
            .map(|(bounds, value)| (HyperBox::from_bounds(bounds), value))
            .collect();
        leaves.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut boxes: Vec<HyperBox> = vec![HyperBox::unbounded(m)];
        boxes.extend(leaves.into_iter().map(|(b, _)| b));
        SdResult { boxes }
    }
}

impl SubgroupDiscovery for CartSd {
    fn discover(&self, d: &Dataset, _d_val: &Dataset, rng: &mut StdRng) -> SdResult {
        let m = d.m();
        if d.is_empty() {
            return SdResult {
                boxes: vec![HyperBox::unbounded(m)],
            };
        }
        let indices: Vec<usize> = (0..d.n()).collect();
        let mut fit_rng = StdRng::seed_from_u64(rng.gen());
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            m,
            &indices,
            &self.tree_params(),
            &mut fit_rng,
        );
        Self::boxes_from_tree(d, &tree)
    }

    fn discover_presorted(
        &self,
        d: &Dataset,
        view: SortedView,
        _d_val: &Dataset,
        rng: &mut StdRng,
    ) -> SdResult {
        let m = d.m();
        if d.is_empty() {
            return SdResult {
                boxes: vec![HyperBox::unbounded(m)],
            };
        }
        // The view's columns are exactly the per-feature `(value, row)`
        // argsorts the tree builder's `fit_with_orders` shares across
        // splits — fitted output is bit-identical to `fit`.
        let orders = view.into_columns();
        let indices: Vec<usize> = (0..d.n()).collect();
        let mut fit_rng = StdRng::seed_from_u64(rng.gen());
        let tree = RegressionTree::fit_with_orders(
            d.points(),
            d.labels(),
            m,
            &indices,
            &self.tree_params(),
            &orders,
            &mut fit_rng,
        );
        Self::boxes_from_tree(d, &tree)
    }

    fn name(&self) -> &'static str {
        "CART"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
            if x[0] > 0.6 && x[1] > 0.7 {
                1.0
            } else {
                0.0
            }
        })
        .expect("valid shape")
    }

    #[test]
    fn cart_finds_the_corner_leaf() {
        let d = corner_data(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = CartSd::default().discover(&d, &d, &mut rng);
        let last = result.last_box().expect("non-empty");
        let precision = last.mean_inside(&d).expect("leaf covers points");
        assert!(precision > 0.9, "leaf precision {precision}");
        assert!(last.contains(&[0.8, 0.9, 0.5]));
        assert!(!last.contains(&[0.1, 0.1, 0.5]));
    }

    #[test]
    fn depth_bounds_restrictions() {
        let d = corner_data(500, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let cart = CartSd::new(CartSdParams {
            max_depth: 2,
            ..Default::default()
        });
        let result = cart.discover(&d, &d, &mut rng);
        for b in &result.boxes {
            assert!(b.n_restricted() <= 2, "{} restrictions", b.n_restricted());
        }
    }

    #[test]
    fn boxes_are_ordered_by_increasing_purity() {
        let d = corner_data(600, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let result = CartSd::default().discover(&d, &d, &mut rng);
        let purities: Vec<f64> = result
            .boxes
            .iter()
            .filter_map(|b| b.mean_inside(&d))
            .collect();
        for w in purities.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "purities not ascending: {purities:?}");
        }
    }

    #[test]
    fn all_negative_data_returns_only_the_root_box() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dataset::from_fn((0..100).map(|_| rng.gen::<f64>()).collect(), 2, |_| 0.0)
            .expect("valid shape");
        let result = CartSd::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
        assert_eq!(result.boxes[0].n_restricted(), 0);
    }

    #[test]
    fn empty_data_is_handled() {
        let d = Dataset::empty(2).expect("valid");
        let mut rng = StdRng::seed_from_u64(8);
        let result = CartSd::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
    }
}
