//! The covering approach (§3.2.1): to find several subgroups, repeatedly
//! run a subgroup-discovery algorithm on the data that no previously
//! discovered box covers.

use std::borrow::Cow;

use rand::rngs::StdRng;
use reds_data::{Dataset, SortedView};

use crate::{SdResult, SubgroupDiscovery};

/// Runs `sd` up to `k` times, removing the rows covered by each run's
/// final box before the next run. Stops early when the data runs dry or
/// a run restricts nothing (no further subgroup found).
///
/// The training columns are argsorted **once**; each round filters the
/// shared order down to the still-uncovered rows and hands the result
/// to [`SubgroupDiscovery::discover_presorted`], so round `i` costs
/// O(M·Lᵢ) instead of the O(M·Lᵢ log Lᵢ) re-sort (plus a full
/// `Dataset` clone) that calling `discover` per round would pay.
/// Results are bit-identical to the per-round `discover` path: removing
/// rows from a `(value, row)`-sorted sequence keeps it sorted, and the
/// orig → current renumbering is monotone, so ties break the same way —
/// the filtered columns *are* `SortedView::new` of the filtered data.
/// `tests::matches_the_reference_implementation` pins this.
pub fn covering(
    sd: &dyn SubgroupDiscovery,
    d: &Dataset,
    d_val: &Dataset,
    k: usize,
    rng: &mut StdRng,
) -> Vec<SdResult> {
    let mut results = Vec::with_capacity(k);
    let full_cols: Vec<Vec<u32>> = SortedView::new(d).into_columns();
    // Which original rows remain, as a mask (for filtering the column
    // orders) and as an ascending id list (for slicing the data).
    let mut alive: Vec<bool> = vec![true; d.n()];
    let mut live: Vec<u32> = (0..d.n() as u32).collect();
    let mut rank: Vec<u32> = vec![0; d.n()];
    let mut train: Cow<'_, Dataset> = Cow::Borrowed(d);
    let mut val: Cow<'_, Dataset> = Cow::Borrowed(d_val);
    for _ in 0..k {
        if train.n() < 2 || train.n_pos() == 0.0 {
            break;
        }
        for (cur, &orig) in live.iter().enumerate() {
            rank[orig as usize] = cur as u32;
        }
        let cols: Vec<Vec<u32>> = full_cols
            .iter()
            .map(|col| {
                col.iter()
                    .filter(|&&r| alive[r as usize])
                    .map(|&r| rank[r as usize])
                    .collect()
            })
            .collect();
        let view = SortedView::from_presorted_columns(cols, train.n())
            .expect("filtered argsort columns are permutations of the live rows");
        let result = sd.discover_presorted(&train, view, &val, rng);
        let Some(last) = result.last_box() else { break };
        if last.n_restricted() == 0 {
            results.push(result);
            break;
        }
        let mut covered_any = false;
        live.retain(|&orig| {
            let keep = !last.contains(d.point(orig as usize));
            if !keep {
                alive[orig as usize] = false;
                covered_any = true;
            }
            keep
        });
        let keep_train: Vec<usize> = live.iter().map(|&r| r as usize).collect();
        let keep_val: Vec<usize> = (0..val.n())
            .filter(|&i| !last.contains(val.point(i)))
            .collect();
        train = Cow::Owned(d.select_rows(&keep_train));
        val = Cow::Owned(val.select_rows(&keep_val));
        results.push(result);
        if !covered_any {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Prim, PrimParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two disjoint interesting corners.
    fn two_corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            let a = x[0] < 0.25 && x[1] < 0.25;
            let b = x[0] > 0.75 && x[1] > 0.75;
            if a || b {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn covering_finds_both_corners() {
        let d = two_corner_data(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let prim = Prim::new(PrimParams::default());
        let results = covering(&prim, &d, &d, 2, &mut rng);
        assert_eq!(results.len(), 2);
        let b1 = results[0].last_box().unwrap();
        let b2 = results[1].last_box().unwrap();
        // The two boxes should land in different corners: one contains
        // (0.1, 0.1), the other (0.9, 0.9).
        let covers = |b: &crate::HyperBox| (b.contains(&[0.1, 0.1]), b.contains(&[0.9, 0.9]));
        let (c1, c2) = (covers(b1), covers(b2));
        assert_ne!(c1, c2, "boxes cover the same corner: {c1:?} {c2:?}");
        assert!(c1.0 || c1.1);
        assert!(c2.0 || c2.1);
    }

    #[test]
    fn covering_stops_on_empty_positives() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::from_fn((0..100).map(|_| rng.gen::<f64>()).collect(), 1, |_| 0.0).unwrap();
        let prim = Prim::default();
        let results = covering(&prim, &d, &d, 5, &mut rng);
        assert!(results.is_empty());
    }

    /// The pre-rewrite implementation, kept verbatim as the oracle:
    /// clone, run the naive `discover`, `select_rows` the remainder.
    fn covering_reference(
        sd: &dyn SubgroupDiscovery,
        d: &Dataset,
        d_val: &Dataset,
        k: usize,
        rng: &mut StdRng,
    ) -> Vec<SdResult> {
        let mut results = Vec::with_capacity(k);
        let mut train = d.clone();
        let mut val = d_val.clone();
        for _ in 0..k {
            if train.n() < 2 || train.n_pos() == 0.0 {
                break;
            }
            let result = sd.discover(&train, &val, rng);
            let Some(last) = result.last_box() else { break };
            if last.n_restricted() == 0 {
                results.push(result);
                break;
            }
            let keep_train: Vec<usize> = (0..train.n())
                .filter(|&i| !last.contains(train.point(i)))
                .collect();
            let keep_val: Vec<usize> = (0..val.n())
                .filter(|&i| !last.contains(val.point(i)))
                .collect();
            let covered_any = keep_train.len() < train.n();
            train = train.select_rows(&keep_train);
            val = val.select_rows(&keep_val);
            results.push(result);
            if !covered_any {
                break;
            }
        }
        results
    }

    /// The presorted rewrite is bit-identical to the reference across
    /// algorithms (including rng-consuming ones), seeds, `k`, and a
    /// validation set distinct from the training set.
    #[test]
    fn matches_the_reference_implementation() {
        use crate::{BestInterval, BiParams, CartSd, CartSdParams, PrimBumping, PrimBumpingParams};
        let algorithms: Vec<Box<dyn SubgroupDiscovery>> = vec![
            Box::new(Prim::new(PrimParams::default())),
            Box::new(BestInterval::new(BiParams::default())),
            Box::new(CartSd::new(CartSdParams::default())),
            Box::new(PrimBumping::new(PrimBumpingParams {
                q: 3,
                ..Default::default()
            })),
        ];
        for seed in [1u64, 11] {
            let d = two_corner_data(400, seed);
            let d_val = two_corner_data(300, seed + 100);
            for sd in &algorithms {
                for k in [1usize, 3, 6] {
                    let mut rng_new = StdRng::seed_from_u64(seed * 31 + k as u64);
                    let mut rng_ref = rng_new.clone();
                    let fast = covering(sd.as_ref(), &d, &d_val, k, &mut rng_new);
                    let slow = covering_reference(sd.as_ref(), &d, &d_val, k, &mut rng_ref);
                    assert_eq!(
                        fast,
                        slow,
                        "{} diverges from the reference at seed {seed}, k = {k}",
                        sd.name()
                    );
                }
            }
        }
    }

    #[test]
    fn covering_respects_the_requested_count() {
        let d = two_corner_data(600, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let prim = Prim::default();
        let results = covering(&prim, &d, &d, 1, &mut rng);
        assert_eq!(results.len(), 1);
    }
}
