//! The covering approach (§3.2.1): to find several subgroups, repeatedly
//! run a subgroup-discovery algorithm on the data that no previously
//! discovered box covers.

use rand::rngs::StdRng;
use reds_data::Dataset;

use crate::{SdResult, SubgroupDiscovery};

/// Runs `sd` up to `k` times, removing the rows covered by each run's
/// final box before the next run. Stops early when the data runs dry or
/// a run restricts nothing (no further subgroup found).
pub fn covering(
    sd: &dyn SubgroupDiscovery,
    d: &Dataset,
    d_val: &Dataset,
    k: usize,
    rng: &mut StdRng,
) -> Vec<SdResult> {
    let mut results = Vec::with_capacity(k);
    let mut train = d.clone();
    let mut val = d_val.clone();
    for _ in 0..k {
        if train.n() < 2 || train.n_pos() == 0.0 {
            break;
        }
        let result = sd.discover(&train, &val, rng);
        let Some(last) = result.last_box() else { break };
        if last.n_restricted() == 0 {
            results.push(result);
            break;
        }
        let keep_train: Vec<usize> = (0..train.n())
            .filter(|&i| !last.contains(train.point(i)))
            .collect();
        let keep_val: Vec<usize> = (0..val.n())
            .filter(|&i| !last.contains(val.point(i)))
            .collect();
        let covered_any = keep_train.len() < train.n();
        train = train.select_rows(&keep_train);
        val = val.select_rows(&keep_val);
        results.push(result);
        if !covered_any {
            break;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Prim, PrimParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two disjoint interesting corners.
    fn two_corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            let a = x[0] < 0.25 && x[1] < 0.25;
            let b = x[0] > 0.75 && x[1] > 0.75;
            if a || b {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn covering_finds_both_corners() {
        let d = two_corner_data(800, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let prim = Prim::new(PrimParams::default());
        let results = covering(&prim, &d, &d, 2, &mut rng);
        assert_eq!(results.len(), 2);
        let b1 = results[0].last_box().unwrap();
        let b2 = results[1].last_box().unwrap();
        // The two boxes should land in different corners: one contains
        // (0.1, 0.1), the other (0.9, 0.9).
        let covers = |b: &crate::HyperBox| (b.contains(&[0.1, 0.1]), b.contains(&[0.9, 0.9]));
        let (c1, c2) = (covers(b1), covers(b2));
        assert_ne!(c1, c2, "boxes cover the same corner: {c1:?} {c2:?}");
        assert!(c1.0 || c1.1);
        assert!(c2.0 || c2.1);
    }

    #[test]
    fn covering_stops_on_empty_positives() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::from_fn((0..100).map(|_| rng.gen::<f64>()).collect(), 1, |_| 0.0).unwrap();
        let prim = Prim::default();
        let results = covering(&prim, &d, &d, 5, &mut rng);
        assert!(results.is_empty());
    }

    #[test]
    fn covering_respects_the_requested_count() {
        let d = two_corner_data(600, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let prim = Prim::default();
        let results = covering(&prim, &d, &d, 1, &mut rng);
        assert_eq!(results.len(), 1);
    }
}
