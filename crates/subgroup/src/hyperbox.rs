//! The hyperbox `B = Π_{j=1}^M [a_j^l, a_j^r]` of §3.1.

use reds_data::Dataset;
use reds_json::Json;

/// An axis-aligned box over the input space; unbounded sides are `±∞`.
///
/// Persistable as JSON through [`HyperBox::to_json`] /
/// [`HyperBox::from_json`]; unbounded sides round-trip losslessly as
/// JSON `null`.
#[derive(Debug, Clone, PartialEq)]
pub struct HyperBox {
    bounds: Vec<(f64, f64)>,
}

impl HyperBox {
    /// The unrestricted box `Π [−∞, +∞]` over `m` inputs — the starting
    /// point of PRIM and BI.
    ///
    /// # Panics
    ///
    /// Panics when `m == 0`.
    pub fn unbounded(m: usize) -> Self {
        assert!(m > 0, "a box needs at least one dimension");
        Self {
            bounds: vec![(f64::NEG_INFINITY, f64::INFINITY); m],
        }
    }

    /// Builds a box from explicit per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics when `bounds` is empty or any lower bound exceeds its
    /// upper bound.
    pub fn from_bounds(bounds: Vec<(f64, f64)>) -> Self {
        assert!(!bounds.is_empty(), "a box needs at least one dimension");
        assert!(
            bounds.iter().all(|&(l, r)| l <= r),
            "lower bound above upper bound"
        );
        Self { bounds }
    }

    /// Number of dimensions.
    pub fn m(&self) -> usize {
        self.bounds.len()
    }

    /// Per-dimension `(lower, upper)` bounds.
    pub fn bounds(&self) -> &[(f64, f64)] {
        &self.bounds
    }

    /// Bounds of dimension `j`.
    pub fn bound(&self, j: usize) -> (f64, f64) {
        self.bounds[j]
    }

    /// Sets the lower bound of dimension `j`.
    pub fn set_lower(&mut self, j: usize, v: f64) {
        self.bounds[j].0 = v;
    }

    /// Sets the upper bound of dimension `j`.
    pub fn set_upper(&mut self, j: usize, v: f64) {
        self.bounds[j].1 = v;
    }

    /// Membership test (inclusive on both sides, matching the paper's
    /// closed intervals).
    ///
    /// # Panics
    ///
    /// Panics when `x.len() != self.m()`.
    #[inline]
    pub fn contains(&self, x: &[f64]) -> bool {
        debug_assert_eq!(x.len(), self.bounds.len());
        self.bounds
            .iter()
            .zip(x)
            .all(|(&(l, r), &v)| v >= l && v <= r)
    }

    /// `true` when input `j` is restricted (`a_j^l ≠ −∞ ∨ a_j^r ≠ +∞`).
    pub fn is_restricted(&self, j: usize) -> bool {
        let (l, r) = self.bounds[j];
        l != f64::NEG_INFINITY || r != f64::INFINITY
    }

    /// The `#restricted` interpretability measure of §4.
    pub fn n_restricted(&self) -> usize {
        (0..self.m()).filter(|&j| self.is_restricted(j)).count()
    }

    /// Subgroup statistics on `data`: `(n, n⁺)` — size and label mass of
    /// the covered examples. With soft labels `n⁺` is the expected count.
    ///
    /// # Panics
    ///
    /// Panics when `data.m() != self.m()`.
    pub fn count(&self, data: &Dataset) -> (f64, f64) {
        assert_eq!(data.m(), self.m(), "box/data dimensionality mismatch");
        let mut n = 0.0;
        let mut n_pos = 0.0;
        for (x, y) in data.iter() {
            if self.contains(x) {
                n += 1.0;
                n_pos += y;
            }
        }
        (n, n_pos)
    }

    /// Mean label inside the box (`n⁺/n`), or `None` when empty.
    pub fn mean_inside(&self, data: &Dataset) -> Option<f64> {
        let (n, n_pos) = self.count(data);
        (n > 0.0).then(|| n_pos / n)
    }

    /// Volume of the box after clipping to `ranges` (per-dimension
    /// `(min, max)` of the data) — the consistency metric replaces
    /// infinities with the observed input ranges (§4).
    ///
    /// # Panics
    ///
    /// Panics when `ranges.len() != self.m()`.
    pub fn clipped_volume(&self, ranges: &[(f64, f64)]) -> f64 {
        assert_eq!(ranges.len(), self.m());
        self.bounds
            .iter()
            .zip(ranges)
            .map(|(&(l, r), &(lo, hi))| (r.min(hi) - l.max(lo)).max(0.0))
            .product()
    }

    /// Intersection with another box of the same dimensionality, or
    /// `None` when the boxes are disjoint.
    ///
    /// # Panics
    ///
    /// Panics when dimensionalities differ.
    pub fn intersect(&self, other: &HyperBox) -> Option<HyperBox> {
        assert_eq!(self.m(), other.m(), "box dimensionality mismatch");
        let mut bounds = Vec::with_capacity(self.m());
        for (&(l1, r1), &(l2, r2)) in self.bounds.iter().zip(&other.bounds) {
            let l = l1.max(l2);
            let r = r1.min(r2);
            if l > r {
                return None;
            }
            bounds.push((l, r));
        }
        Some(HyperBox { bounds })
    }

    /// JSON representation: `{"bounds": [[lo, hi], ...]}`. The common
    /// unbounded sides encode as `null` (lower `null` = `−∞`, upper
    /// `null` = `+∞`); the remaining non-finite values (`+∞` lower,
    /// `−∞` upper — an empty box — or NaN) encode as the strings
    /// `"inf"` / `"-inf"` / `"nan"`, so every bound survives the round
    /// trip losslessly.
    pub fn to_json(&self) -> Json {
        fn bound_to_json(v: f64, open_at: f64) -> Json {
            if v == open_at {
                Json::Null
            } else if v.is_finite() {
                Json::Num(v)
            } else if v.is_nan() {
                Json::str("nan")
            } else if v == f64::INFINITY {
                Json::str("inf")
            } else {
                Json::str("-inf")
            }
        }
        Json::obj([(
            "bounds",
            Json::arr(self.bounds.iter().map(|&(lo, hi)| {
                Json::arr([
                    bound_to_json(lo, f64::NEG_INFINITY),
                    bound_to_json(hi, f64::INFINITY),
                ])
            })),
        )])
    }

    /// Reconstructs a box from [`HyperBox::to_json`] output.
    ///
    /// Returns `None` when the document does not have that shape or a
    /// lower bound exceeds its upper bound.
    pub fn from_json(doc: &Json) -> Option<Self> {
        fn bound_from_json(v: &Json, open_at: f64) -> Option<f64> {
            match v {
                Json::Null => Some(open_at),
                Json::Str(s) => match s.as_str() {
                    "inf" => Some(f64::INFINITY),
                    "-inf" => Some(f64::NEG_INFINITY),
                    "nan" => Some(f64::NAN),
                    _ => None,
                },
                other => other.as_f64(),
            }
        }
        let pairs = doc.get("bounds")?.as_array()?;
        if pairs.is_empty() {
            return None;
        }
        let mut bounds = Vec::with_capacity(pairs.len());
        for pair in pairs {
            let pair = pair.as_array()?;
            if pair.len() != 2 {
                return None;
            }
            let lo = bound_from_json(&pair[0], f64::NEG_INFINITY)?;
            let hi = bound_from_json(&pair[1], f64::INFINITY)?;
            if lo > hi {
                return None;
            }
            bounds.push((lo, hi));
        }
        Some(Self { bounds })
    }

    /// Embeds a box defined over a column subset back into full
    /// dimensionality (PRIM with bumping trains on projected data;
    /// Algorithm 2, line 6). `columns[j]` is the full-space index of the
    /// projected dimension `j`.
    ///
    /// # Panics
    ///
    /// Panics when `columns.len() != self.m()` or any index is `>= m_full`.
    pub fn embed(&self, columns: &[usize], m_full: usize) -> HyperBox {
        assert_eq!(columns.len(), self.m(), "column map length mismatch");
        let mut full = HyperBox::unbounded(m_full);
        for (j, &col) in columns.iter().enumerate() {
            assert!(col < m_full, "column {col} out of range");
            full.bounds[col] = self.bounds[j];
        }
        full
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_box_contains_everything() {
        let b = HyperBox::unbounded(3);
        assert!(b.contains(&[1e12, -1e12, 0.0]));
        assert_eq!(b.n_restricted(), 0);
    }

    #[test]
    fn restriction_counting() {
        let mut b = HyperBox::unbounded(4);
        b.set_lower(1, 0.2);
        b.set_upper(3, 0.9);
        assert_eq!(b.n_restricted(), 2);
        assert!(b.is_restricted(1));
        assert!(!b.is_restricted(0));
    }

    #[test]
    fn membership_is_inclusive() {
        let b = HyperBox::from_bounds(vec![(0.2, 0.8)]);
        assert!(b.contains(&[0.2]));
        assert!(b.contains(&[0.8]));
        assert!(!b.contains(&[0.19]));
        assert!(!b.contains(&[0.81]));
    }

    #[test]
    fn counting_with_soft_labels() {
        let d = Dataset::new(vec![0.1, 0.5, 0.9], vec![0.25, 0.75, 1.0], 1).unwrap();
        let b = HyperBox::from_bounds(vec![(0.4, 1.0)]);
        let (n, np) = b.count(&d);
        assert_eq!(n, 2.0);
        assert!((np - 1.75).abs() < 1e-12);
        assert!((b.mean_inside(&d).unwrap() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn clipped_volume_replaces_infinities() {
        let mut b = HyperBox::unbounded(2);
        b.set_lower(0, 0.25);
        let v = b.clipped_volume(&[(0.0, 1.0), (0.0, 2.0)]);
        assert!((v - 0.75 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn intersection_and_disjointness() {
        let a = HyperBox::from_bounds(vec![(0.0, 0.5), (0.0, 1.0)]);
        let b = HyperBox::from_bounds(vec![(0.25, 1.0), (0.5, 2.0)]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.bound(0), (0.25, 0.5));
        assert_eq!(i.bound(1), (0.5, 1.0));
        let c = HyperBox::from_bounds(vec![(0.6, 1.0), (0.0, 1.0)]);
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn embedding_into_full_space() {
        let small = HyperBox::from_bounds(vec![(0.1, 0.4), (0.5, 0.9)]);
        let full = small.embed(&[3, 1], 5);
        assert_eq!(full.bound(3), (0.1, 0.4));
        assert_eq!(full.bound(1), (0.5, 0.9));
        assert!(!full.is_restricted(0));
        assert_eq!(full.n_restricted(), 2);
    }

    #[test]
    #[should_panic(expected = "lower bound above upper bound")]
    fn invalid_bounds_panic() {
        let _ = HyperBox::from_bounds(vec![(1.0, 0.0)]);
    }

    #[test]
    fn json_round_trip_preserves_infinities() {
        let mut b = HyperBox::unbounded(3);
        b.set_lower(0, 0.25);
        b.set_upper(2, 0.75);
        let doc = b.to_json();
        let text = doc.to_string_pretty();
        let parsed = reds_json::from_str(&text).expect("parses");
        let back = HyperBox::from_json(&parsed).expect("valid box document");
        assert_eq!(back, b);
    }

    #[test]
    fn json_round_trip_preserves_all_nonfinite_bounds() {
        // +∞ lower / −∞ upper describe an empty box; NaN bounds are
        // degenerate but must not silently widen into ±∞ on reload.
        let b = HyperBox {
            bounds: vec![
                (f64::INFINITY, f64::INFINITY),
                (f64::NEG_INFINITY, f64::NEG_INFINITY),
                (f64::NAN, f64::NAN),
            ],
        };
        let parsed = reds_json::from_str(&b.to_json().to_string_compact()).expect("parses");
        let back = HyperBox::from_json(&parsed).expect("valid box document");
        assert_eq!(back.bound(0), (f64::INFINITY, f64::INFINITY));
        assert_eq!(back.bound(1), (f64::NEG_INFINITY, f64::NEG_INFINITY));
        assert!(back.bound(2).0.is_nan() && back.bound(2).1.is_nan());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for bad in [
            "{}",
            r#"{"bounds": []}"#,
            r#"{"bounds": [[0.5]]}"#,
            r#"{"bounds": [[1.0, 0.0]]}"#,
            r#"{"bounds": [["a", 1.0]]}"#,
        ] {
            let doc = reds_json::from_str(bad).expect("syntactically valid");
            assert!(HyperBox::from_json(&doc).is_none(), "accepted: {bad}");
        }
    }

    #[test]
    fn empty_box_mean_is_none() {
        let d = Dataset::new(vec![0.5], vec![1.0], 1).unwrap();
        let b = HyperBox::from_bounds(vec![(2.0, 3.0)]);
        assert!(b.mean_inside(&d).is_none());
    }
}
