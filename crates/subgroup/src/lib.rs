//! Subgroup-discovery algorithms for scenario discovery (§3 of the paper).
//!
//! * [`HyperBox`] — the axis-aligned box `Π_j [a_j^l, a_j^r]` that every
//!   algorithm searches for;
//! * [`Prim`] — the Patient Rule Induction Method's peeling phase
//!   (Algorithm 1) plus the optional pasting phase;
//! * [`PrimBumping`] — PRIM with bumping (Algorithm 2): bootstrap
//!   resampling, random feature subsets, Pareto filtering;
//! * [`BestInterval`] — the BI beam search (Algorithm 3) maximising
//!   WRAcc with the linear-time best-interval scan of Mampaey et al.;
//! * [`covering`] — the covering approach for finding several subgroups;
//! * [`CartSd`] — CART-based scenario discovery (Lempert, Bryant &
//!   Bankes 2008), the classic decision-tree comparator of §2.1;
//! * [`PcaPrim`] — PCA-PRIM (Dalal et al. 2013): PRIM in rotated
//!   coordinates, listed by the paper as orthogonal to and compatible
//!   with REDS (§2.1);
//! * [`Rule`] — the IF–THEN rendering of a scenario (§1).
//!
//! All algorithms accept soft labels in `[0,1]` transparently (sums of
//! labels replace counts), which is what lets REDS feed them
//! probability pseudo-labels (§6.1).

#![warn(missing_docs)]

mod bestinterval;
mod bumping;
mod cart;
mod covering;
mod hyperbox;
mod multiclass;
mod pca;
mod prim;
mod rule;

pub use bestinterval::{BestInterval, BiParams};
pub use bumping::{PrimBumping, PrimBumpingParams};
pub use cart::{CartSd, CartSdParams};
pub use covering::covering;
pub use hyperbox::HyperBox;
pub use multiclass::{discover_classes, ClassScenario};
pub use pca::{covariance_matrix, jacobi_eigen, PcaPrim, PcaRotation, RotatedScenario};
pub use prim::{NaivePrim, PeelCriterion, Prim, PrimParams};
pub use rule::Rule;

use rand::rngs::StdRng;
use reds_data::{ColumnAccess, Dataset, SortedView};

/// Result of one run of a subgroup-discovery algorithm: an ordered
/// sequence of boxes. For PRIM this is the peeling trajectory (coarsest
/// first); for BI a single box; for bumping the Pareto-optimal set
/// ordered by decreasing recall.
///
/// Persistable as JSON via [`SdResult::to_json`] / [`SdResult::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct SdResult {
    /// Discovered boxes, coarsest (highest recall) first.
    pub boxes: Vec<HyperBox>,
}

impl SdResult {
    /// The most refined box (the "last box" the paper evaluates for
    /// precision, interpretability, and consistency).
    pub fn last_box(&self) -> Option<&HyperBox> {
        self.boxes.last()
    }

    /// JSON representation: `{"boxes": [...]}` of [`HyperBox::to_json`]
    /// documents.
    pub fn to_json(&self) -> reds_json::Json {
        reds_json::Json::obj([(
            "boxes",
            reds_json::Json::arr(self.boxes.iter().map(HyperBox::to_json)),
        )])
    }

    /// Reconstructs a result from [`SdResult::to_json`] output.
    pub fn from_json(doc: &reds_json::Json) -> Option<Self> {
        let boxes = doc
            .get("boxes")?
            .as_array()?
            .iter()
            .map(HyperBox::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(Self { boxes })
    }
}

/// A scenario-discovery algorithm (the `SD` argument of Algorithm 4).
pub trait SubgroupDiscovery {
    /// Runs the algorithm on training data `d` with validation data
    /// `d_val` (the paper uses `D_val = D`, §8.5).
    fn discover(&self, d: &Dataset, d_val: &Dataset, rng: &mut StdRng) -> SdResult;

    /// Like [`SubgroupDiscovery::discover`], but reuses an
    /// already-built [`SortedView`] of `d` — the handoff point of the
    /// streaming pipeline, whose out-of-core merge produces the view as
    /// a by-product so the algorithm need not argsort `L` rows again.
    ///
    /// `view` **must** index exactly `d` (same rows, all active);
    /// results are then bit-identical to [`SubgroupDiscovery::discover`].
    /// The default implementation simply drops the view and delegates,
    /// which is always correct — algorithms that presort internally
    /// ([`Prim`], [`BestInterval`], [`CartSd`]) override it.
    fn discover_presorted(
        &self,
        d: &Dataset,
        view: SortedView,
        d_val: &Dataset,
        rng: &mut StdRng,
    ) -> SdResult {
        let _ = view;
        self.discover(d, d_val, rng)
    }

    /// Runs the algorithm against a [`ColumnAccess`] backing instead of
    /// a materialized [`Dataset`] — the out-of-core entry point. The
    /// validation data `d_val` (the paper's `D_val = D`, the original
    /// training rows) stays in memory; only the pseudo-labeled pool is
    /// behind the paged store.
    ///
    /// Implementations must visit the store in the exact orders the
    /// [`ColumnAccess`] contract pins down, so the result is
    /// **bit-identical** to [`SubgroupDiscovery::discover`] on the
    /// materialized pool. Returns `None` when the algorithm (or the
    /// chosen hyperparameters) cannot run without random access to the
    /// full pool — the default, overridden by [`Prim`] (except with
    /// pasting enabled) and [`BestInterval`].
    fn discover_paged(
        &self,
        store: &mut dyn ColumnAccess,
        d_val: &Dataset,
        rng: &mut StdRng,
    ) -> Option<SdResult> {
        let _ = (store, d_val, rng);
        None
    }

    /// Short name for experiment reports ("P", "PB", "BI", …).
    fn name(&self) -> &'static str;
}
