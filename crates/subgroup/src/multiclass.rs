//! Scenario discovery for multinomial outcomes — Kwakkel & Jaxa-Rozen
//! (2016), cited by the paper (§2.1) for "handling heterogeneous
//! uncertainties and multinomial classified outcomes".
//!
//! Many simulation studies classify outcomes into more than two classes
//! (e.g. *stable / oscillating / collapsed*). The one-vs-rest reduction
//! runs a subgroup-discovery algorithm once per class of interest on
//! binarized labels, yielding one scenario per class.

use rand::rngs::StdRng;
use reds_data::Dataset;

use crate::{SdResult, SubgroupDiscovery};

/// A per-class scenario discovered by [`discover_classes`].
#[derive(Debug, Clone)]
pub struct ClassScenario {
    /// The class label this scenario isolates.
    pub class: u32,
    /// Share of examples carrying this class.
    pub share: f64,
    /// The discovery result on the one-vs-rest binarization.
    pub result: SdResult,
}

/// Runs `sd` once per distinct class in `classes` (one-vs-rest),
/// skipping classes rarer than `min_share`. Returns scenarios ordered
/// by class label.
///
/// # Panics
///
/// Panics when `classes.len() != points.len() / m` or `m == 0`.
pub fn discover_classes(
    points: &[f64],
    m: usize,
    classes: &[u32],
    sd: &dyn SubgroupDiscovery,
    min_share: f64,
    rng: &mut StdRng,
) -> Vec<ClassScenario> {
    assert!(m > 0, "need at least one input column");
    assert_eq!(
        classes.len(),
        points.len() / m,
        "one class label per point required"
    );
    let n = classes.len();
    let mut distinct: Vec<u32> = classes.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    let mut out = Vec::with_capacity(distinct.len());
    for class in distinct {
        let share = classes.iter().filter(|&&c| c == class).count() as f64 / n.max(1) as f64;
        if share < min_share {
            continue;
        }
        let labels: Vec<f64> = classes
            .iter()
            .map(|&c| if c == class { 1.0 } else { 0.0 })
            .collect();
        let d = Dataset::new(points.to_vec(), labels, m).expect("shape checked above");
        let result = sd.discover(&d, &d, rng);
        out.push(ClassScenario {
            class,
            share,
            result,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prim;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Three-class outcome on the unit square: left / middle / right band.
    fn three_bands(n: usize, seed: u64) -> (Vec<f64>, Vec<u32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<f64> = (0..n * 2).map(|_| rng.gen::<f64>()).collect();
        let classes = points
            .chunks_exact(2)
            .map(|x| {
                if x[0] < 0.33 {
                    0
                } else if x[0] < 0.66 {
                    1
                } else {
                    2
                }
            })
            .collect();
        (points, classes)
    }

    #[test]
    fn one_scenario_per_class() {
        let (points, classes) = three_bands(600, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let prim = Prim::default();
        let scenarios = discover_classes(&points, 2, &classes, &prim, 0.0, &mut rng);
        assert_eq!(scenarios.len(), 3);
        assert_eq!(
            scenarios.iter().map(|s| s.class).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let total: f64 = scenarios.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn scenarios_isolate_their_bands() {
        let (points, classes) = three_bands(900, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let prim = Prim::default();
        let scenarios = discover_classes(&points, 2, &classes, &prim, 0.0, &mut rng);
        let probes = [[0.15, 0.5], [0.5, 0.5], [0.85, 0.5]];
        for s in &scenarios {
            let b = s.result.last_box().expect("non-empty");
            assert!(
                b.contains(&probes[s.class as usize]),
                "class {} box misses its own band",
                s.class
            );
        }
    }

    #[test]
    fn rare_classes_are_skipped() {
        let (points, mut classes) = three_bands(300, 5);
        // Make class 2 a singleton.
        for c in classes.iter_mut() {
            if *c == 2 {
                *c = 1;
            }
        }
        classes[0] = 2;
        let mut rng = StdRng::seed_from_u64(6);
        let prim = Prim::default();
        let scenarios = discover_classes(&points, 2, &classes, &prim, 0.05, &mut rng);
        assert!(scenarios.iter().all(|s| s.class != 2));
    }

    #[test]
    #[should_panic(expected = "one class label per point")]
    fn mismatched_lengths_panic() {
        let mut rng = StdRng::seed_from_u64(7);
        let prim = Prim::default();
        let _ = discover_classes(&[0.1, 0.2], 1, &[0, 1, 2], &prim, 0.0, &mut rng);
    }
}
