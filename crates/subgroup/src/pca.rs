//! PCA-PRIM (Dalal et al. 2013, [22] in the paper): rotate the input
//! space with a principal-component analysis of the interesting cases,
//! then run PRIM in the rotated coordinates. The paper lists PCA-PRIM as
//! compatible with — and orthogonal to — REDS (§2.1); this module makes
//! the combination available.
//!
//! The linear-algebra substrate (covariance matrix + cyclic Jacobi
//! eigendecomposition for symmetric matrices) is hand-rolled; no BLAS.

use rand::rngs::StdRng;
use reds_data::Dataset;

use crate::{HyperBox, Prim, PrimParams, SubgroupDiscovery};

/// Covariance matrix (row-major `m × m`) of row-major `points`.
/// Returns the zero matrix for fewer than two rows.
pub fn covariance_matrix(points: &[f64], m: usize) -> Vec<f64> {
    let n = points.len() / m.max(1);
    let mut cov = vec![0.0; m * m];
    if n < 2 {
        return cov;
    }
    let mut mean = vec![0.0; m];
    for row in points.chunks_exact(m) {
        for (j, &v) in row.iter().enumerate() {
            mean[j] += v;
        }
    }
    for v in &mut mean {
        *v /= n as f64;
    }
    for row in points.chunks_exact(m) {
        for i in 0..m {
            for j in i..m {
                cov[i * m + j] += (row[i] - mean[i]) * (row[j] - mean[j]);
            }
        }
    }
    for i in 0..m {
        for j in i..m {
            let v = cov[i * m + j] / (n - 1) as f64;
            cov[i * m + j] = v;
            cov[j * m + i] = v;
        }
    }
    cov
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors stored as the
/// *columns* of the returned row-major matrix, sorted by decreasing
/// eigenvalue.
pub fn jacobi_eigen(mat: &[f64], m: usize) -> (Vec<f64>, Vec<f64>) {
    assert_eq!(mat.len(), m * m, "square matrix expected");
    let mut a = mat.to_vec();
    let mut v = vec![0.0; m * m];
    for i in 0..m {
        v[i * m + i] = 1.0;
    }
    for _sweep in 0..100 {
        let off: f64 = (0..m)
            .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
            .map(|(i, j)| a[i * m + j] * a[i * m + j])
            .sum();
        if off < 1e-22 {
            break;
        }
        for p in 0..m {
            for q in (p + 1)..m {
                let apq = a[p * m + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * m + p];
                let aqq = a[q * m + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of `a`.
                for k in 0..m {
                    let akp = a[k * m + p];
                    let akq = a[k * m + q];
                    a[k * m + p] = c * akp - s * akq;
                    a[k * m + q] = s * akp + c * akq;
                }
                for k in 0..m {
                    let apk = a[p * m + k];
                    let aqk = a[q * m + k];
                    a[p * m + k] = c * apk - s * aqk;
                    a[q * m + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..m {
                    let vkp = v[k * m + p];
                    let vkq = v[k * m + q];
                    v[k * m + p] = c * vkp - s * vkq;
                    v[k * m + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..m).collect();
    order.sort_by(|&i, &j| a[j * m + j].total_cmp(&a[i * m + i]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i * m + i]).collect();
    let mut eigenvectors = vec![0.0; m * m];
    for (new_col, &old_col) in order.iter().enumerate() {
        for k in 0..m {
            eigenvectors[k * m + new_col] = v[k * m + old_col];
        }
    }
    (eigenvalues, eigenvectors)
}

/// An orthonormal rotation of the input space fitted by PCA.
#[derive(Debug, Clone)]
pub struct PcaRotation {
    mean: Vec<f64>,
    /// Row-major `m × m`; column `j` is the `j`-th principal axis.
    components: Vec<f64>,
    m: usize,
}

impl PcaRotation {
    /// Fits the rotation to row-major `points` (typically only the
    /// interesting cases, following Dalal et al.).
    ///
    /// # Panics
    ///
    /// Panics when `m == 0` or `points.len()` is not a multiple of `m`.
    pub fn fit(points: &[f64], m: usize) -> Self {
        assert!(m > 0, "need at least one dimension");
        assert_eq!(points.len() % m, 0, "row-major buffer expected");
        let n = points.len() / m;
        let mut mean = vec![0.0; m];
        for row in points.chunks_exact(m) {
            for (j, &v) in row.iter().enumerate() {
                mean[j] += v;
            }
        }
        if n > 0 {
            for v in &mut mean {
                *v /= n as f64;
            }
        }
        let cov = covariance_matrix(points, m);
        let (_, components) = jacobi_eigen(&cov, m);
        Self {
            mean,
            components,
            m,
        }
    }

    /// Number of dimensions.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Projects a point into the rotated (principal-axis) coordinates.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.m, "dimensionality mismatch");
        (0..self.m)
            .map(|j| {
                (0..self.m)
                    .map(|k| (x[k] - self.mean[k]) * self.components[k * self.m + j])
                    .sum()
            })
            .collect()
    }

    /// Maps a rotated point back into the original coordinates.
    pub fn inverse_transform(&self, z: &[f64]) -> Vec<f64> {
        assert_eq!(z.len(), self.m, "dimensionality mismatch");
        (0..self.m)
            .map(|k| {
                self.mean[k]
                    + (0..self.m)
                        .map(|j| z[j] * self.components[k * self.m + j])
                        .sum::<f64>()
            })
            .collect()
    }

    /// Rotates a whole dataset (labels unchanged).
    pub fn transform_dataset(&self, d: &Dataset) -> Dataset {
        let mut points = Vec::with_capacity(d.points().len());
        for (x, _) in d.iter() {
            points.extend(self.transform(x));
        }
        Dataset::new(points, d.labels().to_vec(), self.m).expect("shape preserved")
    }
}

/// A scenario discovered in rotated coordinates: the rotation plus the
/// boxes PRIM found there. Membership tests rotate the query point, so
/// the scenario behaves like an oblique box in the original space.
#[derive(Debug, Clone)]
pub struct RotatedScenario {
    /// The fitted rotation.
    pub rotation: PcaRotation,
    /// PRIM's peeling trajectory in rotated coordinates.
    pub boxes: Vec<HyperBox>,
}

impl RotatedScenario {
    /// The most refined box.
    pub fn last_box(&self) -> Option<&HyperBox> {
        self.boxes.last()
    }

    /// Membership of an *original-space* point in the final box.
    pub fn contains(&self, x: &[f64]) -> bool {
        match self.last_box() {
            Some(b) => b.contains(&self.rotation.transform(x)),
            None => false,
        }
    }

    /// `(n, n⁺)` of the final box on an original-space dataset.
    pub fn count(&self, d: &Dataset) -> (f64, f64) {
        let mut n = 0.0;
        let mut np = 0.0;
        for (x, y) in d.iter() {
            if self.contains(x) {
                n += 1.0;
                np += y;
            }
        }
        (n, np)
    }
}

/// PCA-PRIM: fit a PCA rotation on the interesting examples, run PRIM in
/// the rotated space.
#[derive(Debug, Clone, Default)]
pub struct PcaPrim {
    params: PrimParams,
}

impl PcaPrim {
    /// Creates PCA-PRIM with the given PRIM hyperparameters.
    pub fn new(params: PrimParams) -> Self {
        Self { params }
    }

    /// Runs the algorithm. The rotation is fitted on the `y = 1`
    /// examples of `d` (falling back to all points when fewer than two
    /// positives exist), exactly as Dalal et al. rotate toward the
    /// interesting class.
    pub fn discover(&self, d: &Dataset, rng: &mut StdRng) -> RotatedScenario {
        let positives: Vec<f64> = d
            .iter()
            .filter(|(_, y)| *y > 0.5)
            .flat_map(|(x, _)| x.to_vec())
            .collect();
        let rotation = if positives.len() >= 2 * d.m() {
            PcaRotation::fit(&positives, d.m())
        } else {
            PcaRotation::fit(d.points(), d.m())
        };
        let rotated = rotation.transform_dataset(d);
        let prim = Prim::new(self.params.clone());
        let result = prim.discover(&rotated, &rotated, rng);
        RotatedScenario {
            rotation,
            boxes: result.boxes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn jacobi_diagonalises_a_known_matrix() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1 with eigenvectors
        // (1,1)/√2 and (1,−1)/√2.
        let (vals, vecs) = jacobi_eigen(&[2.0, 1.0, 1.0, 2.0], 2);
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
        let inv_sqrt2 = 1.0 / 2.0f64.sqrt();
        assert!((vecs[0].abs() - inv_sqrt2).abs() < 1e-10);
        assert!((vecs[2].abs() - inv_sqrt2).abs() < 1e-10);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let mat = [4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0];
        let (_, v) = jacobi_eigen(&mat, 3);
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = (0..3).map(|k| v[k * 3 + i] * v[k * 3 + j]).sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-9, "col {i}·col {j} = {dot}");
            }
        }
    }

    #[test]
    fn covariance_of_independent_axes_is_diagonal() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let pts: Vec<f64> = (0..n * 2).map(|_| rng.gen::<f64>()).collect();
        let cov = covariance_matrix(&pts, 2);
        assert!((cov[0] - 1.0 / 12.0).abs() < 0.005, "var {}", cov[0]);
        assert!(cov[1].abs() < 0.005, "cov {}", cov[1]);
    }

    #[test]
    fn transform_roundtrips() {
        let mut rng = StdRng::seed_from_u64(2);
        let pts: Vec<f64> = (0..300).map(|_| rng.gen::<f64>()).collect();
        let rot = PcaRotation::fit(&pts, 3);
        let x = [0.3, 0.7, 0.1];
        let back = rot.inverse_transform(&rot.transform(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn pca_prim_finds_an_oblique_band() {
        // Interesting region: a diagonal band 0.9 < x0 + x1 < 1.3 —
        // axis-aligned PRIM needs many cuts, PCA-PRIM one rotated axis.
        let mut rng = StdRng::seed_from_u64(3);
        let d = Dataset::from_fn((0..2_000).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
            let s = x[0] + x[1];
            if s > 0.9 && s < 1.3 {
                1.0
            } else {
                0.0
            }
        })
        .expect("valid shape");
        let scenario = PcaPrim::default().discover(&d, &mut rng);
        let (n, np) = scenario.count(&d);
        assert!(n > 0.0);
        let precision = np / n;
        assert!(
            precision > 0.8,
            "PCA-PRIM precision {precision} on the oblique band"
        );
        // Sanity: the box must cover a nontrivial share of the band.
        let recall = np / d.n_pos();
        assert!(recall > 0.4, "recall {recall}");
    }

    #[test]
    fn degenerate_positive_sets_fall_back_to_all_points() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Dataset::from_fn((0..100).map(|_| rng.gen::<f64>()).collect(), 2, |_| 0.0)
            .expect("valid shape");
        // No positives at all: must not panic.
        let scenario = PcaPrim::default().discover(&d, &mut rng);
        assert!(!scenario.boxes.is_empty());
    }
}
