//! The Patient Rule Induction Method (Friedman & Fisher 1999) —
//! Algorithm 1 of the paper: top-down peeling plus the optional
//! bottom-up pasting phase.
//!
//! Each peeling step removes the `α` fraction of in-box points with the
//! lowest or highest values of one input, choosing the cut that leaves
//! the highest mean label `n⁺/n` inside the shrunken box. The run yields
//! a nested sequence of boxes (the *peeling trajectory*); following
//! Algorithm 1, the trajectory is truncated at the box with the best
//! validation precision.
//!
//! ## Performance
//!
//! Peeling runs on a [`SortedView`]: every dimension is argsorted once
//! (`O(M·N log N)`), each step scans the surviving prefix/suffix of each
//! presorted column (`O(α·n)` per candidate) and compacts the columns
//! (`O(M·n)`), matching the paper's §7 bound `O(M·(N log N + N/α))`
//! instead of re-sorting all `M` columns at every step. The in-box count
//! on the validation data is maintained incrementally as well — a cut
//! only ever removes validation rows through the freshly moved face, so
//! no full `contains` rescan is needed.
//!
//! The pre-optimization implementation is kept as [`NaivePrim`] (hidden
//! from docs): it is the reference oracle for the equivalence tests and
//! the baseline for the `presort` benchmarks, and produces bit-identical
//! trajectories.

use rand::rngs::StdRng;
use reds_data::{ColumnAccess, Dataset, SortedView, ViewAccess};

use crate::{HyperBox, SdResult, SubgroupDiscovery};

/// Objective guiding each peeling step. The paper uses the classic mean
/// target (§3.2.1); Kwakkel & Jaxa-Rozen's alternative target functions
/// (§2.1) trade purity against the mass removed — both are compatible
/// with REDS and exposed for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PeelCriterion {
    /// Maximise the mean label of the surviving box (Friedman & Fisher).
    #[default]
    MeanLabel,
    /// Maximise the mean-label *gain per point removed* — a "lenient"
    /// objective that prefers cuts removing few points, in the spirit of
    /// Kwakkel & Jaxa-Rozen's LENIENT targets.
    GainPerPoint,
}

/// PRIM hyperparameters (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct PrimParams {
    /// Peeling fraction `α` removed per step (paper default 0.05).
    pub alpha: f64,
    /// Minimum number of points (`mp`) that must remain inside the box
    /// on both the training and validation data (paper default 20).
    pub min_points: usize,
    /// Run the bottom-up pasting phase after peeling. The paper found
    /// pasting's effect negligible (§3.2.1) and leaves it off.
    pub paste: bool,
    /// Objective of each peeling step.
    pub criterion: PeelCriterion,
}

impl Default for PrimParams {
    fn default() -> Self {
        Self {
            alpha: 0.05,
            min_points: 20,
            paste: false,
            criterion: PeelCriterion::MeanLabel,
        }
    }
}

/// The PRIM algorithm.
#[derive(Debug, Clone, Default)]
pub struct Prim {
    params: PrimParams,
}

/// One peeling candidate: cut dimension `dim` from below (`low = true`)
/// or above, moving the bound to `new_bound`.
struct Candidate {
    dim: usize,
    low: bool,
    new_bound: f64,
    score: f64,
    n_after: usize,
}

impl PrimParams {
    fn score_of(&self, mean_after: f64, mean_before: f64, removed: usize) -> f64 {
        match self.criterion {
            PeelCriterion::MeanLabel => mean_after,
            PeelCriterion::GainPerPoint => (mean_after - mean_before) / removed as f64,
        }
    }
}

/// Sum of the labels of `rows` (ascending row order, the same
/// association as a filtered scan over the dataset).
fn label_sum(d: &Dataset, rows: &[u32]) -> f64 {
    rows.iter().map(|&i| d.label(i as usize)).sum()
}

/// Mean label over `rows`, or `None` when empty.
fn mean_label(d: &Dataset, rows: &[u32]) -> Option<f64> {
    if rows.is_empty() {
        None
    } else {
        Some(label_sum(d, rows) / rows.len() as f64)
    }
}

impl Prim {
    /// Creates PRIM with the given hyperparameters.
    pub fn new(params: PrimParams) -> Self {
        assert!(
            params.alpha > 0.0 && params.alpha < 1.0,
            "peeling fraction must be in (0, 1)"
        );
        Self { params }
    }

    /// Peeling fraction `α`.
    pub fn alpha(&self) -> f64 {
        self.params.alpha
    }

    /// The full peeling trajectory on `d`, *not* truncated at the best
    /// validation box. Exposed for trajectory plots (Figure 11).
    pub fn peel_trajectory(&self, d: &Dataset) -> Vec<HyperBox> {
        self.peel(d, d).0
    }

    /// Runs the peeling phase. Returns the trajectory together with the
    /// validation precision of every box (`None` when the box covers no
    /// validation rows), computed incrementally alongside the peel.
    fn peel(&self, d: &Dataset, d_val: &Dataset) -> (Vec<HyperBox>, Vec<Option<f64>>) {
        self.peel_with_view(d, SortedView::new(d), d_val)
    }

    /// The peeling phase on an externally built [`SortedView`] of `d`
    /// (e.g. the out-of-core merge of the streaming pipeline). The view
    /// must index exactly `d` with every row active.
    fn peel_with_view(
        &self,
        d: &Dataset,
        view: SortedView,
        d_val: &Dataset,
    ) -> (Vec<HyperBox>, Vec<Option<f64>>) {
        let mut store = ViewAccess::new(d, view);
        self.peel_store(&mut store, d_val)
    }

    /// The peeling phase against any [`ColumnAccess`] backing — the
    /// single implementation behind both the in-memory path
    /// ([`ViewAccess`]) and the out-of-core paged store. The store's
    /// ordering contract keeps every float summation in the order the
    /// naive reference uses, so trajectories are bit-identical across
    /// backings.
    ///
    /// Validation rows stay in memory (`D_val = D` is the original
    /// training data, not the pool) and are filtered incrementally: a
    /// cut only ever removes validation rows through the freshly moved
    /// face, so no full `contains` rescan is needed.
    fn peel_store(
        &self,
        store: &mut dyn ColumnAccess,
        d_val: &Dataset,
    ) -> (Vec<HyperBox>, Vec<Option<f64>>) {
        let m = store.m();
        let mut boxes = vec![HyperBox::unbounded(m)];
        let mut val_rows: Vec<u32> = (0..d_val.n() as u32).collect();
        let mut precisions = vec![mean_label(d_val, &val_rows)];
        if store.n_rows() == 0 {
            return (boxes, precisions);
        }
        let mut current = HyperBox::unbounded(m);
        loop {
            if store.n_active() < self.params.min_points.max(2)
                || val_rows.len() < self.params.min_points
            {
                break;
            }
            // Ascending-row-order label total: the summation order that
            // keeps the scores bit-identical to the naive reference.
            let total_pos = store.active_label_sum();
            let Some(best) = self.best_peel_store(store, total_pos) else {
                break;
            };
            if best.low {
                current.set_lower(best.dim, best.new_bound);
                store.deactivate_below(best.dim, best.new_bound);
                val_rows.retain(|&i| d_val.value(i as usize, best.dim) >= best.new_bound);
            } else {
                current.set_upper(best.dim, best.new_bound);
                store.deactivate_above(best.dim, best.new_bound);
                val_rows.retain(|&i| d_val.value(i as usize, best.dim) <= best.new_bound);
            }
            debug_assert_eq!(store.n_active(), best.n_after);
            boxes.push(current.clone());
            precisions.push(mean_label(d_val, &val_rows));
        }
        (boxes, precisions)
    }

    /// Evaluates all `2M` peeling candidates and returns the one with
    /// the highest score, or `None` when no dimension can be cut (all
    /// in-box values equal everywhere).
    ///
    /// A cut can only ever touch the `k + 1` lowest (or highest) active
    /// entries of a column, so per dimension this buffers `O(α·n)`
    /// entries from each end of the sorted column — no sorting, and no
    /// random access into the store.
    fn best_peel_store(&self, store: &mut dyn ColumnAccess, total_pos: f64) -> Option<Candidate> {
        let n_in = store.n_active();
        let k = ((self.params.alpha * n_in as f64).floor() as usize).max(1);
        if k >= n_in {
            return None;
        }
        let mean_before = total_pos / n_in as f64;
        let mut best: Option<Candidate> = None;
        let mut consider = |cand: Candidate| {
            if best.as_ref().is_none_or(|b| cand.score > b.score) {
                best = Some(cand);
            }
        };
        let mut front: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        let mut back: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
        for dim in 0..store.m() {
            // `front[r]` is the active entry at rank `r`; `back[i]` the
            // one at rank `n_in − 1 − i`.
            front.clear();
            store.scan_active_front(dim, &mut |v, row| {
                front.push((v, row));
                front.len() < k + 1
            });
            back.clear();
            store.scan_active_back(dim, &mut |v, row| {
                back.push((v, row));
                back.len() < k + 1
            });
            // Low cut: the new lower bound is the value at rank k; every
            // point strictly below it is peeled off, points equal to it
            // stay. Ties straddling the α-quantile therefore shrink the
            // removed count below k (possibly to zero, killing the
            // candidate) — they never split.
            let low_bound = front[k].0;
            let mut removed_low = k;
            while removed_low > 0 && front[removed_low - 1].0 == low_bound {
                removed_low -= 1;
            }
            if removed_low > 0 && removed_low < n_in {
                // Removed labels summed in forward column order — the
                // association of the in-memory `label_sum`; −0.0 is the
                // identity `Iterator::sum::<f64>` folds from.
                let mut removed_pos = -0.0;
                for &(_, row) in &front[..removed_low] {
                    removed_pos += store.label(row);
                }
                let n_after = n_in - removed_low;
                let mean_after = (total_pos - removed_pos) / n_after as f64;
                consider(Candidate {
                    dim,
                    low: true,
                    new_bound: low_bound,
                    score: self.params.score_of(mean_after, mean_before, removed_low),
                    n_after,
                });
            }
            // High cut, mirrored: remove points strictly above the value
            // at rank n − 1 − k. The removed tail is still summed in
            // forward column order, hence the reversed back buffer.
            let high_bound = back[k].0;
            let mut removed_high = k;
            while removed_high > 0 && back[removed_high - 1].0 == high_bound {
                removed_high -= 1;
            }
            if removed_high > 0 && removed_high < n_in {
                let mut removed_pos = -0.0;
                for &(_, row) in back[..removed_high].iter().rev() {
                    removed_pos += store.label(row);
                }
                let n_after = n_in - removed_high;
                let mean_after = (total_pos - removed_pos) / n_after as f64;
                consider(Candidate {
                    dim,
                    low: false,
                    new_bound: high_bound,
                    score: self.params.score_of(mean_after, mean_before, removed_high),
                    n_after,
                });
            }
        }
        best
    }

    /// Bottom-up pasting (Friedman & Fisher §8.2): repeatedly re-expand
    /// the box face whose re-inclusion of ≈ `α·n` points raises the mean
    /// label the most, as long as some expansion raises it.
    fn paste(&self, d: &Dataset, b: &HyperBox) -> HyperBox {
        let m = d.m();
        let mut current = b.clone();
        loop {
            let in_idx: Vec<usize> = (0..d.n())
                .filter(|&i| current.contains(d.point(i)))
                .collect();
            if in_idx.is_empty() {
                return current;
            }
            let n_in = in_idx.len() as f64;
            let pos_in: f64 = in_idx.iter().map(|&i| d.label(i)).sum();
            let mean_in = pos_in / n_in;
            let k = ((self.params.alpha * n_in).floor() as usize).max(1);
            let mut best: Option<(usize, bool, f64, f64)> = None; // dim, low, bound, mean
            for dim in 0..m {
                let (lo, hi) = current.bound(dim);
                // Points outside only through this face, inside on all
                // other dimensions.
                let mut slab = current.clone();
                slab.set_lower(dim, f64::NEG_INFINITY);
                slab.set_upper(dim, f64::INFINITY);
                for low in [true, false] {
                    let mut outside: Vec<(f64, f64)> = (0..d.n())
                        .filter_map(|i| {
                            let x = d.point(i);
                            if !slab.contains(x) {
                                return None;
                            }
                            let v = d.value(i, dim);
                            let beyond = if low { v < lo } else { v > hi };
                            beyond.then_some((v, d.label(i)))
                        })
                        .collect();
                    if outside.is_empty() {
                        continue;
                    }
                    // Nearest k points beyond the face.
                    outside.sort_unstable_by(|a, b| {
                        if low {
                            b.0.total_cmp(&a.0)
                        } else {
                            a.0.total_cmp(&b.0)
                        }
                    });
                    let take = k.min(outside.len());
                    let add_pos: f64 = outside[..take].iter().map(|&(_, y)| y).sum();
                    let new_bound = outside[take - 1].0;
                    let new_mean = (pos_in + add_pos) / (n_in + take as f64);
                    if new_mean > mean_in && best.is_none_or(|(_, _, _, bm)| new_mean > bm) {
                        best = Some((dim, low, new_bound, new_mean));
                    }
                }
            }
            let Some((dim, low, bound, _)) = best else {
                return current;
            };
            if low {
                current.set_lower(dim, bound);
            } else {
                current.set_upper(dim, bound);
            }
        }
    }

    /// Trajectory truncation of Algorithm 1, line 5: keep the box with
    /// the highest validation precision and all preceding boxes. Ties
    /// on validation precision favour the earlier (larger) box: equal
    /// purity at higher recall dominates.
    fn truncate_at_best(mut boxes: Vec<HyperBox>, precisions: &[Option<f64>]) -> Vec<HyperBox> {
        let best = precisions
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (i, p)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .unwrap_or(boxes.len() - 1);
        boxes.truncate(best + 1);
        boxes
    }

    /// Truncation plus the optional pasting phase.
    fn finish(&self, d: &Dataset, boxes: Vec<HyperBox>, precisions: Vec<Option<f64>>) -> SdResult {
        let mut boxes = Self::truncate_at_best(boxes, &precisions);
        if self.params.paste {
            if let Some(last) = boxes.pop() {
                boxes.push(self.paste(d, &last));
            }
        }
        SdResult { boxes }
    }
}

impl SubgroupDiscovery for Prim {
    fn discover(&self, d: &Dataset, d_val: &Dataset, _rng: &mut StdRng) -> SdResult {
        let (boxes, precisions) = self.peel(d, d_val);
        self.finish(d, boxes, precisions)
    }

    fn discover_presorted(
        &self,
        d: &Dataset,
        view: SortedView,
        d_val: &Dataset,
        _rng: &mut StdRng,
    ) -> SdResult {
        let (boxes, precisions) = self.peel_with_view(d, view, d_val);
        self.finish(d, boxes, precisions)
    }

    fn discover_paged(
        &self,
        store: &mut dyn ColumnAccess,
        d_val: &Dataset,
        _rng: &mut StdRng,
    ) -> Option<SdResult> {
        if self.params.paste {
            // Pasting re-expands the box through arbitrary slabs of the
            // pool — random access the paged store does not serve.
            return None;
        }
        let (boxes, precisions) = self.peel_store(store, d_val);
        Some(SdResult {
            boxes: Self::truncate_at_best(boxes, &precisions),
        })
    }

    fn name(&self) -> &'static str {
        "P"
    }
}

/// The pre-optimization PRIM implementation: re-sorts every dimension
/// at every peeling step (`O(M·N log N)` **per step**) and rescans the
/// full validation set with `contains` after every cut.
///
/// Kept as the reference oracle for the equivalence tests and as the
/// baseline of the `presort` benchmarks; produces trajectories
/// bit-identical to [`Prim`]. Not part of the supported API.
#[doc(hidden)]
#[derive(Debug, Clone, Default)]
pub struct NaivePrim {
    prim: Prim,
}

impl NaivePrim {
    /// Naive PRIM with the given hyperparameters.
    pub fn new(params: PrimParams) -> Self {
        Self {
            prim: Prim::new(params),
        }
    }

    /// The full untruncated peeling trajectory, matching
    /// [`Prim::peel_trajectory`].
    pub fn peel_trajectory(&self, d: &Dataset) -> Vec<HyperBox> {
        self.peel(d, d).0
    }

    fn peel(&self, d: &Dataset, d_val: &Dataset) -> (Vec<HyperBox>, Vec<Option<f64>>) {
        let params = &self.prim.params;
        let m = d.m();
        let mut boxes = vec![HyperBox::unbounded(m)];
        let all_val: Vec<u32> = (0..d_val.n() as u32).collect();
        let mut precisions = vec![mean_label(d_val, &all_val)];
        if d.is_empty() {
            return (boxes, precisions);
        }
        let mut in_idx: Vec<usize> = (0..d.n()).collect();
        let mut val_count = d_val.n();
        let mut current = HyperBox::unbounded(m);
        loop {
            if in_idx.len() < params.min_points.max(2) || val_count < params.min_points {
                break;
            }
            let Some(best) = self.best_peel(d, &in_idx, m) else {
                break;
            };
            if best.low {
                current.set_lower(best.dim, best.new_bound);
            } else {
                current.set_upper(best.dim, best.new_bound);
            }
            in_idx.retain(|&i| {
                let v = d.value(i, best.dim);
                if best.low {
                    v >= best.new_bound
                } else {
                    v <= best.new_bound
                }
            });
            debug_assert_eq!(in_idx.len(), best.n_after);
            let in_val: Vec<u32> = (0..d_val.n() as u32)
                .filter(|&i| current.contains(d_val.point(i as usize)))
                .collect();
            val_count = in_val.len();
            boxes.push(current.clone());
            precisions.push(mean_label(d_val, &in_val));
        }
        (boxes, precisions)
    }

    /// Per-step candidate search, re-sorting each dimension from
    /// scratch. Sorts by `(value, row)` — the same total order the
    /// presorted columns maintain — so label sums associate identically
    /// and the produced trajectories match [`Prim`] bit for bit.
    fn best_peel(&self, d: &Dataset, in_idx: &[usize], m: usize) -> Option<Candidate> {
        let params = &self.prim.params;
        let n_in = in_idx.len();
        let k = ((params.alpha * n_in as f64).floor() as usize).max(1);
        if k >= n_in {
            return None;
        }
        let total_pos: f64 = in_idx.iter().map(|&i| d.label(i)).sum();
        let mean_before = total_pos / n_in as f64;
        let mut values: Vec<(f64, f64, usize)> = Vec::with_capacity(n_in);
        let mut best: Option<Candidate> = None;
        for dim in 0..m {
            values.clear();
            values.extend(in_idx.iter().map(|&i| (d.value(i, dim), d.label(i), i)));
            values.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.2.cmp(&b.2)));
            let low_bound = values[k].0;
            let removed_low = values
                .iter()
                .take_while(|&&(v, _, _)| v < low_bound)
                .count();
            if removed_low > 0 && removed_low < n_in {
                let removed_pos: f64 = values[..removed_low].iter().map(|&(_, y, _)| y).sum();
                let n_after = n_in - removed_low;
                let mean_after = (total_pos - removed_pos) / n_after as f64;
                let score = params.score_of(mean_after, mean_before, removed_low);
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(Candidate {
                        dim,
                        low: true,
                        new_bound: low_bound,
                        score,
                        n_after,
                    });
                }
            }
            let high_bound = values[n_in - 1 - k].0;
            let removed_high = values
                .iter()
                .rev()
                .take_while(|&&(v, _, _)| v > high_bound)
                .count();
            if removed_high > 0 && removed_high < n_in {
                let removed_pos: f64 = values[n_in - removed_high..]
                    .iter()
                    .map(|&(_, y, _)| y)
                    .sum();
                let n_after = n_in - removed_high;
                let mean_after = (total_pos - removed_pos) / n_after as f64;
                let score = params.score_of(mean_after, mean_before, removed_high);
                if best.as_ref().is_none_or(|b| score > b.score) {
                    best = Some(Candidate {
                        dim,
                        low: false,
                        new_bound: high_bound,
                        score,
                        n_after,
                    });
                }
            }
        }
        best
    }
}

impl SubgroupDiscovery for NaivePrim {
    fn discover(&self, d: &Dataset, d_val: &Dataset, _rng: &mut StdRng) -> SdResult {
        let (boxes, precisions) = self.peel(d, d_val);
        self.prim.finish(d, boxes, precisions)
    }

    fn name(&self) -> &'static str {
        "P(naive)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Corner concept: y = 1 iff x0 > 0.6 and x1 > 0.7.
    fn corner_data(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        Dataset::from_fn((0..n * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
            if x[0] > 0.6 && x[1] > 0.7 {
                1.0
            } else {
                0.0
            }
        })
        .unwrap()
    }

    #[test]
    fn prim_finds_the_corner() {
        let d = corner_data(600, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let result = Prim::default().discover(&d, &d, &mut rng);
        let last = result.last_box().unwrap();
        let precision = last.mean_inside(&d).unwrap();
        assert!(precision > 0.9, "precision {precision}");
        let (lo0, _) = last.bound(0);
        let (lo1, _) = last.bound(1);
        assert!((lo0 - 0.6).abs() < 0.1, "x0 lower bound {lo0}");
        assert!((lo1 - 0.7).abs() < 0.1, "x1 lower bound {lo1}");
    }

    #[test]
    fn trajectory_is_nested_and_starts_unbounded() {
        let d = corner_data(400, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let result = Prim::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes[0], HyperBox::unbounded(3));
        for w in result.boxes.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            for j in 0..3 {
                assert!(next.bound(j).0 >= prev.bound(j).0);
                assert!(next.bound(j).1 <= prev.bound(j).1);
            }
        }
    }

    #[test]
    fn min_points_bounds_the_final_box() {
        let d = corner_data(300, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let prim = Prim::new(PrimParams {
            min_points: 50,
            ..Default::default()
        });
        // Full (untruncated) trajectory: every box on it respects mp.
        let result = prim.discover(&d, &d, &mut rng);
        for b in &result.boxes {
            let (n, _) = b.count(&d);
            // A box is only pushed when ≥ mp points remained before the
            // cut; after the cut at most α·n + ties are gone, so the
            // count cannot collapse below (1−α)·mp − 1 in one step.
            assert!(n >= 30.0, "box with {n} points");
        }
    }

    #[test]
    fn pure_data_yields_trivial_trajectory() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Dataset::from_fn((0..120).map(|_| rng.gen::<f64>()).collect(), 2, |_| 1.0).unwrap();
        let result = Prim::default().discover(&d, &d, &mut rng);
        // Everything is interesting: the unrestricted box already has
        // precision 1, so truncation keeps the first box.
        assert_eq!(result.boxes.len(), 1);
        assert_eq!(result.boxes[0].n_restricted(), 0);
    }

    #[test]
    fn soft_labels_guide_peeling() {
        // Probability ramp in x: PRIM on soft labels should cut from the
        // low-x side first.
        let mut rng = StdRng::seed_from_u64(8);
        let d =
            Dataset::from_fn((0..500).map(|_| rng.gen::<f64>()).collect(), 1, |x| x[0]).unwrap();
        let result = Prim::default().discover(&d, &d, &mut rng);
        let last = result.last_box().unwrap();
        assert!(last.bound(0).0 > 0.5, "lower bound {}", last.bound(0).0);
        assert_eq!(last.bound(0).1, f64::INFINITY);
    }

    #[test]
    fn pasting_recovers_an_overshrunk_box() {
        let d = corner_data(500, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let plain = Prim::default().discover(&d, &d, &mut rng);
        let pasted = Prim::new(PrimParams {
            paste: true,
            ..Default::default()
        })
        .discover(&d, &d, &mut rng);
        let recall = |b: &HyperBox| b.count(&d).1;
        // Pasting can only re-include points, never lose them.
        assert!(recall(pasted.last_box().unwrap()) >= recall(plain.last_box().unwrap()));
    }

    #[test]
    fn empty_data_returns_unbounded_box() {
        let d = Dataset::empty(2).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let result = Prim::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
        assert_eq!(result.boxes[0].n_restricted(), 0);
    }

    #[test]
    #[should_panic(expected = "peeling fraction")]
    fn invalid_alpha_panics() {
        let _ = Prim::new(PrimParams {
            alpha: 1.5,
            ..Default::default()
        });
    }

    #[test]
    fn gain_per_point_criterion_also_finds_the_corner() {
        let d = corner_data(600, 12);
        let mut rng = StdRng::seed_from_u64(13);
        let prim = Prim::new(PrimParams {
            criterion: PeelCriterion::GainPerPoint,
            ..Default::default()
        });
        let result = prim.discover(&d, &d, &mut rng);
        let precision = result.last_box().unwrap().mean_inside(&d).unwrap();
        assert!(precision > 0.85, "precision {precision}");
    }

    #[test]
    fn criteria_produce_valid_nested_trajectories() {
        let d = corner_data(300, 14);
        for criterion in [PeelCriterion::MeanLabel, PeelCriterion::GainPerPoint] {
            let mut rng = StdRng::seed_from_u64(15);
            let prim = Prim::new(PrimParams {
                criterion,
                ..Default::default()
            });
            let result = prim.discover(&d, &d, &mut rng);
            for w in result.boxes.windows(2) {
                for j in 0..3 {
                    assert!(w[1].bound(j).0 >= w[0].bound(j).0, "{criterion:?}");
                    assert!(w[1].bound(j).1 <= w[0].bound(j).1, "{criterion:?}");
                }
            }
        }
    }

    /// Regression test for tie handling at the α-quantile cut: a run of
    /// equal values straddling rank `k` must never be split — the
    /// removed count shrinks to the strict-inequality prefix, and when
    /// the tie run reaches the bottom of the column the candidate is
    /// dropped entirely.
    #[test]
    fn ties_straddling_the_quantile_are_never_split() {
        // 40 points in 1-D: value 0.0 × 10, then 0.5 × 20, then 1.0 × 10.
        // α = 0.3 → k = 12, which lands inside the 0.5 tie run: the low
        // cut must remove exactly the ten 0.0 points, keeping every 0.5.
        let mut points = vec![0.0; 10];
        points.extend(vec![0.5; 20]);
        points.extend(vec![1.0; 10]);
        let labels: Vec<f64> = points
            .iter()
            .map(|&v| if v > 0.25 { 1.0 } else { 0.0 })
            .collect();
        let d = Dataset::new(points, labels, 1).unwrap();
        let prim = Prim::new(PrimParams {
            alpha: 0.3,
            min_points: 5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let result = prim.discover(&d, &d, &mut rng);
        let last = result.last_box().unwrap();
        assert_eq!(
            last.bound(0).0,
            0.5,
            "tie run was split: {:?}",
            last.bound(0)
        );
        let (n, np) = last.count(&d);
        assert_eq!(n, 30.0, "every tied 0.5 point must survive the cut");
        assert_eq!(np, 30.0);
        // The naive oracle agrees bit-for-bit on this edge case.
        let naive = NaivePrim::new(PrimParams {
            alpha: 0.3,
            min_points: 5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(0);
        let reference = naive.discover(&d, &d, &mut rng);
        assert_eq!(result.boxes, reference.boxes);
    }

    /// When *all* values of the peel dimension are tied, no cut exists
    /// and peeling terminates rather than looping or panicking.
    #[test]
    fn all_tied_column_cannot_be_peeled() {
        let points = vec![0.7; 60];
        let labels: Vec<f64> = (0..60).map(|i| (i % 2) as f64).collect();
        let d = Dataset::new(points, labels, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let result = Prim::default().discover(&d, &d, &mut rng);
        assert_eq!(result.boxes.len(), 1);
        assert_eq!(result.boxes[0].n_restricted(), 0);
    }

    #[test]
    fn naive_and_presorted_trajectories_match_bitwise() {
        for seed in 0..8 {
            let d = corner_data(250, 100 + seed);
            let full = Prim::default().peel_trajectory(&d);
            let reference = NaivePrim::default().peel_trajectory(&d);
            assert_eq!(full, reference, "seed {seed}");
        }
    }

    #[test]
    fn discover_paged_over_a_view_matches_discover_bitwise() {
        for seed in 0..4 {
            let d = corner_data(300, 200 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let direct = Prim::default().discover(&d, &d, &mut rng);
            let mut store = ViewAccess::new(&d, SortedView::new(&d));
            let mut rng = StdRng::seed_from_u64(seed);
            let paged = Prim::default()
                .discover_paged(&mut store, &d, &mut rng)
                .expect("PRIM without pasting supports the paged path");
            assert_eq!(direct.boxes, paged.boxes, "seed {seed}");
        }
    }

    #[test]
    fn pasting_declines_the_paged_path() {
        let d = corner_data(100, 42);
        let prim = Prim::new(PrimParams {
            paste: true,
            ..Default::default()
        });
        let mut store = ViewAccess::new(&d, SortedView::new(&d));
        let mut rng = StdRng::seed_from_u64(0);
        assert!(prim.discover_paged(&mut store, &d, &mut rng).is_none());
    }
}
