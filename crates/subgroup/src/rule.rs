//! Human-readable rendering of a scenario as the paper's IF–THEN rule
//! (§1): `IF a₁ˡ ≤ a₁ ≤ a₁ʳ AND … THEN y = 1`.

use std::fmt;

use crate::HyperBox;

/// A displayable rule: a box plus optional input names and an optional
/// rescaling of the unit-cube bounds into physical units.
#[derive(Debug, Clone)]
pub struct Rule<'a> {
    hyperbox: &'a HyperBox,
    names: Option<&'a [&'a str]>,
    ranges: Option<&'a [(f64, f64)]>,
}

impl<'a> Rule<'a> {
    /// Renders the box with generic input names `a1..aM`.
    pub fn new(hyperbox: &'a HyperBox) -> Self {
        Self {
            hyperbox,
            names: None,
            ranges: None,
        }
    }

    /// Uses the given input names.
    ///
    /// # Panics
    ///
    /// Panics when `names.len() != hyperbox.m()`.
    pub fn with_names(mut self, names: &'a [&'a str]) -> Self {
        assert_eq!(names.len(), self.hyperbox.m(), "one name per input");
        self.names = Some(names);
        self
    }

    /// Rescales unit-cube bounds to physical ranges before printing
    /// (`u ↦ lo + u·(hi − lo)`, clamped to the range).
    ///
    /// # Panics
    ///
    /// Panics when `ranges.len() != hyperbox.m()`.
    pub fn with_ranges(mut self, ranges: &'a [(f64, f64)]) -> Self {
        assert_eq!(ranges.len(), self.hyperbox.m(), "one range per input");
        self.ranges = Some(ranges);
        self
    }

    fn rescale(&self, j: usize, u: f64) -> f64 {
        match self.ranges {
            Some(ranges) => {
                let (lo, hi) = ranges[j];
                lo + u.clamp(0.0, 1.0) * (hi - lo)
            }
            None => u,
        }
    }
}

impl fmt::Display for Rule<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let restricted: Vec<usize> = (0..self.hyperbox.m())
            .filter(|&j| self.hyperbox.is_restricted(j))
            .collect();
        if restricted.is_empty() {
            return write!(f, "IF true THEN y = 1");
        }
        write!(f, "IF ")?;
        for (k, &j) in restricted.iter().enumerate() {
            if k > 0 {
                write!(f, " AND ")?;
            }
            let default_name = format!("a{}", j + 1);
            let name = self.names.map_or(default_name.as_str(), |n| n[j]);
            let (lo, hi) = self.hyperbox.bound(j);
            match (lo.is_finite(), hi.is_finite()) {
                (true, true) => write!(
                    f,
                    "{:.3} <= {name} <= {:.3}",
                    self.rescale(j, lo),
                    self.rescale(j, hi)
                )?,
                (true, false) => write!(f, "{name} >= {:.3}", self.rescale(j, lo))?,
                (false, true) => write!(f, "{name} <= {:.3}", self.rescale(j, hi))?,
                (false, false) => unreachable!("restricted input has a finite bound"),
            }
        }
        write!(f, " THEN y = 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrestricted_box_is_trivially_true() {
        let b = HyperBox::unbounded(3);
        assert_eq!(Rule::new(&b).to_string(), "IF true THEN y = 1");
    }

    #[test]
    fn bounded_and_half_open_intervals_render() {
        let mut b = HyperBox::unbounded(3);
        b.set_lower(0, 0.25);
        b.set_upper(0, 0.75);
        b.set_lower(2, 0.5);
        let s = Rule::new(&b).to_string();
        assert_eq!(s, "IF 0.250 <= a1 <= 0.750 AND a3 >= 0.500 THEN y = 1");
    }

    #[test]
    fn names_and_ranges_apply() {
        let mut b = HyperBox::unbounded(2);
        b.set_upper(1, 0.5);
        let names = ["tau", "gamma"];
        let ranges = [(0.5, 6.0), (0.05, 1.0)];
        let s = Rule::new(&b)
            .with_names(&names)
            .with_ranges(&ranges)
            .to_string();
        assert_eq!(s, "IF gamma <= 0.525 THEN y = 1");
    }

    #[test]
    #[should_panic(expected = "one name per input")]
    fn wrong_name_count_panics() {
        let b = HyperBox::unbounded(2);
        let names = ["only-one"];
        let _ = Rule::new(&b).with_names(&names);
    }
}
