//! Scenario discovery on a real simulator: for which parameter
//! combinations is a Decentral-Smart-Grid-Control power grid stable?
//!
//! This is the paper's motivating use case (§1, §8.3 "dsgc"): each
//! "simulation" integrates a delay-differential swing-equation system,
//! which is exactly the kind of expensive run REDS is designed to save.
//!
//! ```text
//! cargo run --release --example grid_stability
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{Reds, RedsConfig};
use reds::functions::{by_name, DsgcParams};
use reds::metamodel::RandomForestParams;
use reds::metrics::score_box;
use reds::sampling::halton;
use reds::subgroup::Prim;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let dsgc = by_name("dsgc").expect("registered function");

    // 400 grid simulations on a Halton design (the paper's setup).
    println!("running 400 DSGC simulations...");
    let design = halton(400, dsgc.m());
    let data = dsgc
        .label_dataset(design, &mut rng)
        .expect("consistent shape");
    println!("stable share in sample: {:.1}%", 100.0 * data.pos_rate());

    // REDS with a random forest: pseudo-label 30 000 parameter points
    // instead of running 30 000 more simulations.
    let reds = Reds::random_forest(
        RandomForestParams::default(),
        RedsConfig::default().with_l(30_000),
    );
    let result = reds
        .run(&data, &Prim::default(), &mut rng)
        .expect("pipeline runs");
    let stable_box = result.last_box().expect("non-empty trajectory");

    // Validate the discovered stability scenario with fresh simulations.
    println!("validating the discovered scenario with 1000 fresh simulations...");
    let check_design = halton(1_000, dsgc.m());
    let check = dsgc
        .label_dataset(check_design, &mut rng)
        .expect("consistent shape");
    let s = score_box(stable_box, &check);
    println!(
        "scenario: precision {:.2} (vs {:.2} base rate), recall {:.2}, {} of 12 inputs restricted",
        s.precision,
        check.pos_rate(),
        s.recall,
        s.n_restricted,
    );
    // Translate unit-cube bounds back to physical grid parameters for
    // the restricted inputs.
    let labels = [
        "tau_1 (s)",
        "tau_2 (s)",
        "tau_3 (s)",
        "tau_4 (s)",
        "gamma_1",
        "gamma_2",
        "gamma_3",
        "gamma_4",
        "P_1",
        "P_2",
        "P_3",
        "K",
    ];
    println!("\nstability conditions (physical units):");
    for (j, &(lo, hi)) in stable_box.bounds().iter().enumerate() {
        if !stable_box.is_restricted(j) {
            continue;
        }
        let lo_u = lo.max(0.0);
        let hi_u = hi.min(1.0);
        let phys = |u: f64, j: usize| {
            let p_lo = DsgcParams::from_unit(&[0.0; 12]);
            let p_hi = DsgcParams::from_unit(&[1.0; 12]);
            let (a, b) = match j {
                0..=3 => (p_lo.tau[j], p_hi.tau[j]),
                4..=7 => (p_lo.gamma[j - 4], p_hi.gamma[j - 4]),
                8..=10 => (p_lo.power[j - 7], p_hi.power[j - 7]),
                _ => (p_lo.coupling, p_hi.coupling),
            };
            a + u * (b - a)
        };
        println!(
            "  {:10} in [{:.2}, {:.2}]",
            labels[j],
            phys(lo_u, j),
            phys(hi_u, j)
        );
    }
    println!("\n(the physics: weak price response gamma avoids the delayed-feedback resonance)");
}
