//! PCA-PRIM + REDS on an oblique scenario (§2.1 of the paper lists
//! PCA-PRIM as compatible with and orthogonal to REDS): when the
//! interesting region is a diagonal band, axis-aligned boxes waste
//! precision, while PRIM in PCA-rotated coordinates captures it in one
//! interval — and REDS supplies the pseudo-labels both ways.
//!
//! Also demonstrates the IF–THEN rule rendering of scenarios.
//!
//! ```text
//! cargo run --release --example oblique_scenarios
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{Reds, RedsConfig};
use reds::data::Dataset;
use reds::metamodel::GbdtParams;
use reds::sampling::{latin_hypercube, uniform};
use reds::subgroup::{PcaPrim, Prim, Rule, SubgroupDiscovery};

/// Ground truth: a diagonal band in the first two of four inputs.
fn band(x: &[f64]) -> f64 {
    let s = x[0] + x[1];
    if s > 0.85 && s < 1.25 {
        1.0
    } else {
        0.0
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    let m = 4;
    // Few "simulations" of the band model.
    let design = latin_hypercube(300, m, &mut rng);
    let data = Dataset::from_fn(design, m, band).expect("consistent shape");
    println!(
        "{} runs, {:.1}% interesting (oblique band x1 + x2 in (0.85, 1.25))",
        data.n(),
        100.0 * data.pos_rate()
    );

    // REDS pseudo-labels a large pool once; both discoverers use it.
    let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(30_000));
    let model = reds
        .train_metamodel(&data, &mut rng)
        .expect("training runs");
    let pool = uniform(30_000, m, &mut rng);
    let d_new = Dataset::from_fn(pool, m, |x| if model.predict(x) > 0.5 { 1.0 } else { 0.0 })
        .expect("consistent shape");

    // Honest test data.
    let test_points = uniform(20_000, m, &mut rng);
    let test = Dataset::from_fn(test_points, m, band).expect("consistent shape");

    // F1 of a box on a dataset — the compromise a domain expert picks
    // from the trajectory (§5).
    let f1_of = |n: f64, np: f64, total_pos: f64| {
        let p = if n > 0.0 { np / n } else { 0.0 };
        let r = if total_pos > 0.0 { np / total_pos } else { 0.0 };
        2.0 * p * r / (p + r).max(1e-9)
    };

    // Axis-aligned PRIM on the pseudo-labels.
    let axis = Prim::default().discover(&d_new, &data, &mut rng);
    let axis_box = axis
        .boxes
        .iter()
        .max_by(|a, b| {
            let score = |bx: &reds::subgroup::HyperBox| {
                let (n, np) = bx.count(&test);
                f1_of(n, np, test.n_pos())
            };
            score(a).total_cmp(&score(b))
        })
        .expect("non-empty trajectory");
    let (n, np) = axis_box.count(&test);
    println!(
        "\naxis-aligned PRIM : precision {:.3}, recall {:.3}",
        np / n.max(1.0),
        np / test.n_pos()
    );
    println!("  {}", Rule::new(axis_box));

    // PCA-PRIM on the same pseudo-labels: the rotation lines up with the
    // band, so one rotated interval captures it. Score every trajectory
    // box on the rotated test set and pick the F1 compromise.
    let rotated = PcaPrim::default().discover(&d_new, &mut rng);
    let rotated_test = rotated.rotation.transform_dataset(&test);
    let pca_box = rotated
        .boxes
        .iter()
        .max_by(|a, b| {
            let score = |bx: &reds::subgroup::HyperBox| {
                let (n, np) = bx.count(&rotated_test);
                f1_of(n, np, rotated_test.n_pos())
            };
            score(a).total_cmp(&score(b))
        })
        .expect("non-empty trajectory");
    let (n, np) = pca_box.count(&rotated_test);
    println!(
        "\nPCA-PRIM          : precision {:.3}, recall {:.3}",
        np / n.max(1.0),
        np / rotated_test.n_pos()
    );
    println!("  (in rotated coordinates) {}", Rule::new(pca_box));
    println!(
        "  restricted axes: {} (axis-aligned PRIM used {})",
        pca_box.n_restricted(),
        axis_box.n_restricted()
    );
}
