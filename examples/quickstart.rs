//! Quickstart: discover a scenario with plain PRIM and with REDS, and
//! see the difference on held-out data.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{Reds, RedsConfig};
use reds::functions::by_name;
use reds::metamodel::GbdtParams;
use reds::metrics::{pr_auc, score_box};
use reds::sampling::{latin_hypercube, uniform};
use reds::subgroup::{Prim, SubgroupDiscovery};

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // The "ellipse" benchmark: 15 inputs, 10 of which matter; y = 1
    // inside a weighted ellipsoid (≈ 22 % of the unit cube).
    let f = by_name("ellipse").expect("registered function");

    // Step 1 — run a *small* number of expensive "simulations".
    let n = 300;
    let design = latin_hypercube(n, f.m(), &mut rng);
    let data = f.label_dataset(design, &mut rng).expect("consistent shape");
    println!(
        "simulated {n} runs; {:.1}% interesting",
        100.0 * data.pos_rate()
    );

    // A large test set stands in for ground truth.
    let test_points = uniform(20_000, f.m(), &mut rng);
    let test = f
        .label_dataset(test_points, &mut rng)
        .expect("consistent shape");

    // Conventional scenario discovery: PRIM directly on the data.
    let prim = Prim::default();
    let plain = prim.discover(&data, &data, &mut rng);

    // REDS: boost the same data with an XGBoost-style metamodel that
    // pseudo-labels 50 000 fresh points before PRIM runs.
    let reds = Reds::xgboost(GbdtParams::default(), RedsConfig::default().with_l(50_000));
    let boosted = reds.run(&data, &prim, &mut rng).expect("pipeline runs");

    for (name, result) in [("PRIM", &plain), ("REDS+PRIM", &boosted)] {
        // A domain expert picks one box from the peeling trajectory by
        // trading precision against recall (§5); here we automate the
        // choice with the F1-optimal box.
        let best = result
            .boxes
            .iter()
            .max_by(|a, b| {
                let f1 = |bx: &reds::subgroup::HyperBox| {
                    let s = score_box(bx, &test);
                    2.0 * s.precision * s.recall / (s.precision + s.recall).max(1e-9)
                };
                f1(a).total_cmp(&f1(b))
            })
            .expect("non-empty trajectory");
        let s = score_box(best, &test);
        println!(
            "{name:10} PR AUC {:.3}  chosen box: precision {:.3}, recall {:.3}, {} inputs restricted",
            pr_auc(&result.boxes, &test),
            s.precision,
            s.recall,
            s.n_restricted,
        );
        for (j, &(lo, hi)) in best.bounds().iter().enumerate() {
            if best.is_restricted(j) {
                println!("            input {j}: [{lo:.3}, {hi:.3}]");
            }
        }
    }
}
