//! REDS as a semi-supervised subgroup-discovery method (§6.1, §9.4):
//! a small labeled dataset plus a large *unlabeled* pool from the same
//! input distribution. REDS trains its metamodel on the labeled part
//! and pseudo-labels the pool for PRIM.
//!
//! ```text
//! cargo run --release --example semi_supervised
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{Reds, RedsConfig};
use reds::functions::by_name;
use reds::metamodel::GbdtParams;
use reds::metrics::score_box;
use reds::sampling::logit_normal;
use reds::subgroup::{Prim, SubgroupDiscovery};

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let f = by_name("hart3").expect("registered function");
    // Inputs follow a *non-uniform* distribution (logit-normal) — the
    // only requirement is that labeled and unlabeled points share it.
    let labeled_points = logit_normal(150, f.m(), 0.0, 1.0, &mut rng);
    let labeled = f
        .label_dataset(labeled_points, &mut rng)
        .expect("consistent shape");
    let pool = logit_normal(20_000, f.m(), 0.0, 1.0, &mut rng);
    println!(
        "labeled: {} examples ({:.1}% positive); unlabeled pool: {} points",
        labeled.n(),
        100.0 * labeled.pos_rate(),
        pool.len() / f.m()
    );

    let prim = Prim::default();
    let plain = prim.discover(&labeled, &labeled, &mut rng);

    let reds = Reds::xgboost(
        GbdtParams::default(),
        RedsConfig::default().with_probability_labels(),
    );
    let semi = reds
        .run_on_pool(&labeled, &pool, &prim, &mut rng)
        .expect("pipeline runs");

    // Honest evaluation data from the same distribution.
    let test_points = logit_normal(20_000, f.m(), 0.0, 1.0, &mut rng);
    let test = f
        .label_dataset(test_points, &mut rng)
        .expect("consistent shape");
    for (name, result) in [("PRIM (labeled only)", &plain), ("REDS (semi-sup.)", &semi)] {
        // Pick the F1-optimal compromise box from the trajectory — the
        // choice a domain expert makes interactively (§5).
        let s = result
            .boxes
            .iter()
            .map(|b| score_box(b, &test))
            .max_by(|a, b| {
                let f1 = |s: &reds::metrics::BoxScore| {
                    2.0 * s.precision * s.recall / (s.precision + s.recall).max(1e-9)
                };
                f1(a).total_cmp(&f1(b))
            })
            .expect("non-empty trajectory");
        println!(
            "{name:20} precision {:.3}  recall {:.3}  ({} inputs restricted)",
            s.precision, s.recall, s.n_restricted
        );
    }
}
