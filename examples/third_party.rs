//! Scenario discovery from third-party data (§9.3): no simulation model
//! is available — only the fixed `lake` dataset (1000 recorded runs of
//! the shallow-lake eutrophication model). REDS still helps: the
//! metamodel smooths the scarce labels before PRIM runs.
//!
//! ```text
//! cargo run --release --example third_party
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{Reds, RedsConfig};
use reds::data::train_test_split;
use reds::functions::lake_dataset;
use reds::metamodel::RandomForestParams;
use reds::metrics::{pr_auc, score_box};
use reds::subgroup::{Prim, SubgroupDiscovery};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let lake = lake_dataset();
    println!(
        "lake dataset: {} rows, {} inputs, {:.1}% eutrophication cases",
        lake.n(),
        lake.m(),
        100.0 * lake.pos_rate()
    );
    // Hold out 30 % for honest evaluation — principle (3) of §8.1.
    let split = train_test_split(&lake, 0.7, &mut rng).expect("enough rows");

    let prim = Prim::default();
    let plain = prim.discover(&split.train, &split.train, &mut rng);

    let reds = Reds::random_forest(
        RandomForestParams::default(),
        // "RPfp": probability pseudo-labels — the best performer on
        // third-party data in the paper (Table 5).
        RedsConfig::default()
            .with_l(20_000)
            .with_probability_labels(),
    );
    let boosted = reds
        .run(&split.train, &prim, &mut rng)
        .expect("pipeline runs");

    println!("\nwhich conditions flip the lake into the eutrophic state?");
    for (name, result) in [("PRIM", &plain), ("REDS(RPfp)", &boosted)] {
        let last = result.last_box().expect("non-empty trajectory");
        let s = score_box(last, &split.test);
        println!(
            "{name:11} PR AUC {:.3}  box precision {:.3} recall {:.3} ({} inputs restricted)",
            pr_auc(&result.boxes, &split.test),
            s.precision,
            s.recall,
            s.n_restricted
        );
    }
    let b = boosted.last_box().expect("non-empty trajectory");
    let names = [
        "b (removal)",
        "q (recycling)",
        "inflow mean",
        "inflow stdev",
        "delta",
    ];
    println!("\nREDS scenario in lake-model units:");
    let ranges = [
        (0.1, 0.45),
        (2.0, 4.5),
        (0.01, 0.05),
        (0.001, 0.005),
        (0.93, 0.99),
    ];
    for (j, &(lo, hi)) in b.bounds().iter().enumerate() {
        if b.is_restricted(j) {
            let (a, z) = ranges[j];
            let phys = |u: f64| a + u.clamp(0.0, 1.0) * (z - a);
            println!("  {:14} in [{:.3}, {:.3}]", names[j], phys(lo), phys(hi));
        }
    }
    println!("(expected: low removal rate b and strong recycling q drive eutrophication)");
}
