//! # REDS — Rule Extraction for Discovering Scenarios
//!
//! A from-scratch Rust reproduction of *"REDS: Rule Extraction for
//! Discovering Scenarios"* (Arzamasov & Böhm, SIGMOD 2021).
//!
//! Scenario discovery searches for interpretable hyperbox regions of a
//! simulation model's input space in which an outcome of interest occurs.
//! REDS cuts the number of expensive simulation runs needed by training an
//! intermediate machine-learning metamodel on the few available runs and
//! using it to pseudo-label a much larger sample for a conventional
//! subgroup-discovery algorithm (PRIM, PRIM with bumping, or BestInterval).
//!
//! This facade crate re-exports the entire public API:
//!
//! * [`data`] — datasets, splits, bootstrap, k-fold CV;
//! * [`sampling`] — Latin hypercube, Halton, Sobol, uniform and
//!   logit-normal designs;
//! * [`functions`] — the paper's 33 benchmark functions, the DSGC grid
//!   simulator and third-party dataset stand-ins;
//! * [`metamodel`] — CART, random forest, gradient boosting, RBF-SVM;
//! * [`subgroup`] — PRIM, PRIM with bumping, BestInterval;
//! * [`metrics`] — precision/recall, PR AUC, WRAcc, consistency,
//!   interpretability counts;
//! * [`core`] — the REDS pipeline itself;
//! * [`eval`] — the experiment harness and statistical tests.
//!
//! ## Quickstart
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use reds::core::{Reds, RedsConfig};
//! use reds::functions::BenchmarkFunction;
//! use reds::metamodel::RandomForestParams;
//! use reds::sampling::latin_hypercube;
//! use reds::subgroup::{Prim, PrimParams};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let f = BenchmarkFunction::by_name("ellipse").unwrap();
//!
//! // 1. few expensive "simulations"
//! let design = latin_hypercube(200, f.m(), &mut rng);
//! let data = f.label_dataset(design, &mut rng).unwrap();
//!
//! // 2-4. REDS: metamodel -> pseudo-label L new points -> PRIM
//! let config = RedsConfig::default().with_l(2_000);
//! let reds = Reds::random_forest(RandomForestParams::default(), config);
//! let result = reds
//!     .run(&data, &Prim::new(PrimParams::default()), &mut rng)
//!     .unwrap();
//! assert!(!result.boxes.is_empty());
//! ```

pub use reds_core as core;
pub use reds_data as data;
pub use reds_eval as eval;
pub use reds_functions as functions;
pub use reds_metamodel as metamodel;
pub use reds_metrics as metrics;
pub use reds_sampling as sampling;
pub use reds_subgroup as subgroup;
