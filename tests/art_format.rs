//! Hardening and equivalence suite for the `.redsart` artifact format.
//!
//! Two acceptance bars of the artifact PR:
//!
//! * **Corruption is rejected, structurally.** Flipping any single byte
//!   of a valid `.redsart` file, or truncating it at any length, makes
//!   the loader return a structured error — never a panic, hang, or
//!   out-of-bounds read. The whole-file FNV-1a checksum (computed with
//!   its own header field zeroed) guarantees this deterministically:
//!   the per-byte FNV step is a bijection on the 64-bit state, so any
//!   single-byte change of an equal-length file changes the digest.
//! * **Bit-identical serving.** For all three metamodel families, the
//!   mapped model predicts bit-identically to the `reds-json` load
//!   path, and a served `discover` returns the same boxes.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, SavedModel, Svm, SvmParams,
};
use reds_serve::{run_discover, ArtifactFormat, DiscoverParams, ModelArtifact};

/// A small labelled dataset with an interesting corner.
fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x.iter().all(|&v| v > 0.4) {
            1.0
        } else {
            0.0
        }
    })
    .unwrap()
}

fn fit_family(family: &str, train: &Dataset, rng: &mut StdRng) -> SavedModel {
    match family {
        "f" => {
            let params = RandomForestParams {
                n_trees: 5,
                ..Default::default()
            };
            SavedModel::Forest(RandomForest::fit(train, &params, rng))
        }
        "x" => {
            let params = GbdtParams {
                n_rounds: 5,
                ..Default::default()
            };
            SavedModel::Gbdt(Gbdt::fit(train, &params, rng))
        }
        "s" => SavedModel::Svm(Svm::fit(train, &SvmParams::default(), rng)),
        other => panic!("unknown family {other}"),
    }
}

fn tiny_artifact(family: &str, seed: u64) -> ModelArtifact {
    let train = corner_data(60, 2, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let model = fit_family(family, &train, &mut rng);
    ModelArtifact {
        function: "corner".to_string(),
        seed,
        pool_seed: seed.wrapping_add(1000),
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: model.into(),
        train,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reds-art-test-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every single-byte flip of a valid artifact is rejected with a
/// structured error, and so is every truncation length — the loader
/// never panics (a panic would abort this very test) and never reads
/// out of bounds.
#[test]
fn every_single_byte_corruption_is_rejected() {
    let dir = temp_dir("mutate");
    let clean = dir.join("clean.redsart");
    tiny_artifact("f", 5).save_art(&clean).unwrap();
    let original = std::fs::read(&clean).unwrap();
    assert!(
        ModelArtifact::load_art(&clean).is_ok(),
        "the unmutated file must load"
    );

    let mutant = dir.join("mutant.redsart");
    for i in 0..original.len() {
        let mut bytes = original.clone();
        bytes[i] ^= 1; // the smallest possible corruption
        std::fs::write(&mutant, &bytes).unwrap();
        let err = ModelArtifact::load_art(&mutant)
            .err()
            .unwrap_or_else(|| panic!("flipping byte {i} of {} went undetected", original.len()));
        // Structured, not empty: the error renders a message.
        assert!(!err.to_string().is_empty());
    }
    for len in 0..original.len() {
        std::fs::write(&mutant, &original[..len]).unwrap();
        assert!(
            ModelArtifact::load_art(&mutant).is_err(),
            "truncation to {len} of {} bytes went undetected",
            original.len()
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// For every family: the `.redsart` and `reds-json` load paths predict
/// bit-identically and discover the same boxes.
#[test]
fn mapped_models_are_bit_identical_to_json_for_all_families() {
    let dir = temp_dir("bitid");
    for family in ["f", "x", "s"] {
        for seed in [3u64, 17] {
            let artifact = tiny_artifact(family, seed);
            let json_path = dir.join(format!("{family}-{seed}.json"));
            let art_path = dir.join(format!("{family}-{seed}.redsart"));
            artifact.save(&json_path).unwrap();
            artifact.save_art(&art_path).unwrap();
            let from_json = ModelArtifact::load(&json_path).unwrap();
            let from_art = ModelArtifact::load(&art_path).unwrap();
            assert_eq!(from_json.format(), ArtifactFormat::Json);
            assert_eq!(from_art.format(), ArtifactFormat::Art);
            assert_eq!(from_art.function, from_json.function);
            assert_eq!(from_art.seed, from_json.seed);
            assert_eq!(from_art.pool_seed, from_json.pool_seed);
            assert_eq!(from_art.train, from_json.train);

            let m = artifact.train.m();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
            let probe: Vec<f64> = (0..500 * m).map(|_| rng.gen::<f64>()).collect();
            let a = from_json.model.predict_batch(&probe, m);
            let b = from_art.model.predict_batch(&probe, m);
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "family {family}, seed {seed}: prediction {i} differs ({x} vs {y})"
                );
            }
            for row in probe.chunks_exact(m).take(32) {
                assert_eq!(
                    from_json.model.predict(row).to_bits(),
                    from_art.model.predict(row).to_bits()
                );
            }

            let params = DiscoverParams {
                l: 4_000,
                seed,
                ..Default::default()
            };
            let discover = |a: &ModelArtifact| {
                run_discover(
                    |points| Ok(a.model.predict_batch(&points, m)),
                    m,
                    &a.train,
                    &params,
                )
                .unwrap()
            };
            assert_eq!(
                discover(&from_json),
                discover(&from_art),
                "family {family}, seed {seed}: served discover diverges"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The same XOR-every-byte bar for a *pool* artifact — one that
/// carries COLUMN, PAGE_INDEX, and DATASET sections (the out-of-core
/// store's input): both the materializing reader ([`ArtFile`]) and the
/// streaming-verify reader ([`ArtScan`], which `OocPool::open` uses)
/// reject every single-byte corruption and every truncation with a
/// structured error.
#[test]
fn every_pool_artifact_corruption_is_rejected_by_both_readers() {
    use reds_art::{ArtFile, ArtScan};
    use reds_stream::{PoolBuilder, StreamConfig};

    let dir = temp_dir("pool-mutate");
    let clean = dir.join("pool.redsart");
    let (n, m) = (60usize, 2usize);
    let points: Vec<f64> = (0..n * m)
        .map(|i| ((i * 7919) % 97) as f64 / 97.0)
        .collect();
    let labels: Vec<f64> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
    let mut builder = PoolBuilder::new(m, &StreamConfig::new()).unwrap();
    builder.push_chunk(&points, &labels).unwrap();
    builder.finish_art(&clean, 16).unwrap();
    let original = std::fs::read(&clean).unwrap();
    assert!(
        ArtFile::open(&clean).is_ok(),
        "the unmutated file must load"
    );
    assert!(
        ArtScan::open(&clean).is_ok(),
        "the unmutated file must scan"
    );

    let mutant = dir.join("mutant.redsart");
    for i in 0..original.len() {
        let mut bytes = original.clone();
        bytes[i] ^= 1;
        std::fs::write(&mutant, &bytes).unwrap();
        let err = ArtFile::open(&mutant)
            .err()
            .unwrap_or_else(|| panic!("ArtFile missed a flip of byte {i}"));
        assert!(!err.to_string().is_empty());
        let err = ArtScan::open(&mutant)
            .err()
            .unwrap_or_else(|| panic!("ArtScan missed a flip of byte {i}"));
        assert!(!err.to_string().is_empty());
    }
    for len in 0..original.len() {
        std::fs::write(&mutant, &original[..len]).unwrap();
        assert!(
            ArtFile::open(&mutant).is_err(),
            "ArtFile missed truncation to {len}"
        );
        assert!(
            ArtScan::open(&mutant).is_err(),
            "ArtScan missed truncation to {len}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Format sniffing goes by leading bytes, not extension: a `.redsart`
/// blob under a `.json` name still maps, and vice versa.
#[test]
fn format_sniffing_ignores_the_extension() {
    let dir = temp_dir("sniff");
    let artifact = tiny_artifact("f", 9);
    let lying_json = dir.join("model.json");
    artifact.save_art(&lying_json).unwrap();
    let loaded = ModelArtifact::load(&lying_json).unwrap();
    assert_eq!(loaded.format(), ArtifactFormat::Art);
    let lying_art = dir.join("model.redsart");
    artifact.save(&lying_art).unwrap();
    let loaded = ModelArtifact::load(&lying_art).unwrap();
    assert_eq!(loaded.format(), ArtifactFormat::Json);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The mapped reader also rejects files that are well-formed at the
/// container level but structurally invalid — here, an empty file and
/// a non-artifact file.
#[test]
fn junk_files_are_rejected() {
    let dir = temp_dir("junk");
    let path = dir.join("junk.redsart");
    std::fs::write(&path, b"").unwrap();
    assert!(ModelArtifact::load_art(&path).is_err());
    std::fs::write(&path, b"REDSART1 but then garbage follows").unwrap();
    assert!(ModelArtifact::load_art(&path).is_err());
    assert!(Path::new(&path).exists());
    std::fs::remove_dir_all(&dir).unwrap();
}
