//! Property-based tests of the shard-checkpoint layer: arbitrary unit
//! records — including adversarial (NaN-free) float extremes, empty
//! shards, and duplicate units — survive serialize → parse → merge
//! unchanged, bit for bit.

use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use reds::eval::checkpoint::{
    load_checkpoint, merge_records, record_from_json, record_to_json, CheckpointError,
    CheckpointHeader, CheckpointWriter, ShardCheckpoint, UnitRecord,
};
use reds::eval::{Evaluation, WorkUnit};
use reds::subgroup::HyperBox;
use reds_json::from_str;

/// Float values that have historically broken naive JSON formatters:
/// extreme magnitudes, subnormals, the 2^53 integer-precision boundary,
/// negative zero, and accumulated-rounding decimals.
const EXTREMES: [f64; 14] = [
    0.0,
    -0.0,
    1e-300,
    -1e-300,
    5e-324,
    -5e-324,
    f64::MAX,
    f64::MIN,
    f64::MIN_POSITIVE,
    9007199254740991.0,
    9007199254740992.0,
    -9007199254740991.0,
    0.30000000000000004,
    1.0,
];

fn adversarial_f64() -> impl Strategy<Value = f64> {
    (0usize..EXTREMES.len(), -1e3f64..1e3, prop::bool::ANY).prop_map(|(i, random, extreme)| {
        if extreme {
            EXTREMES[i]
        } else {
            random
        }
    })
}

fn arb_box() -> impl Strategy<Value = HyperBox> {
    prop::collection::vec((adversarial_f64(), adversarial_f64(), 0usize..4), 1..4usize).prop_map(
        |dims| {
            let bounds: Vec<(f64, f64)> = dims
                .into_iter()
                .map(|(a, b, kind)| match kind {
                    // Unbounded / half-open sides exercise the null/"inf"
                    // encodings of `HyperBox::to_json`.
                    0 => (f64::NEG_INFINITY, f64::INFINITY),
                    1 => (f64::NEG_INFINITY, a.max(b)),
                    2 => (a.min(b), f64::INFINITY),
                    _ => (a.min(b), a.max(b)),
                })
                .collect();
            HyperBox::from_bounds(bounds)
        },
    )
}

fn arb_record() -> impl Strategy<Value = UnitRecord> {
    (
        (0u64..u64::MAX, 0u64..u64::MAX, 0usize..64, 0usize..8),
        (
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
            adversarial_f64(),
        ),
        (0usize..40, 0usize..40),
        arb_box(),
    )
        .prop_map(
            |((rs, ms, rep, mi), (pr, prec, rec, wr, rt), (nr, ni), last_box)| UnitRecord {
                spec: format!("{:016x}", rs ^ ms),
                unit: WorkUnit {
                    function: "fn-π \"quoted\\name\"".to_string(),
                    n: 200,
                    method: format!("M{mi}"),
                    method_index: mi,
                    rep,
                    rep_seed: rs,
                    method_seed: ms,
                },
                eval: Evaluation {
                    pr_auc: pr,
                    precision: prec,
                    recall: rec,
                    wracc: wr,
                    n_restricted: nr,
                    n_irrel: ni,
                    runtime_ms: rt,
                    last_box,
                },
                attempt: (mi % 4) as u32,
            },
        )
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

fn record_eq(a: &UnitRecord, b: &UnitRecord) -> bool {
    a.spec == b.spec
        && a.attempt == b.attempt
        && a.unit == b.unit
        && bits_eq(a.eval.pr_auc, b.eval.pr_auc)
        && bits_eq(a.eval.precision, b.eval.precision)
        && bits_eq(a.eval.recall, b.eval.recall)
        && bits_eq(a.eval.wracc, b.eval.wracc)
        && bits_eq(a.eval.runtime_ms, b.eval.runtime_ms)
        && a.eval.n_restricted == b.eval.n_restricted
        && a.eval.n_irrel == b.eval.n_irrel
        && a.eval.last_box.bounds().len() == b.eval.last_box.bounds().len()
        && a.eval
            .last_box
            .bounds()
            .iter()
            .zip(b.eval.last_box.bounds())
            .all(|(x, y)| bits_eq(x.0, y.0) && bits_eq(x.1, y.1))
}

fn tmp_file(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "reds-ckpt-prop-{}-{}-{tag}.jsonl",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Deduplicates by merge key so duplicate-rejection never fires on
/// honestly-generated inputs.
fn distinct(records: Vec<UnitRecord>) -> Vec<UnitRecord> {
    let mut seen = std::collections::HashSet::new();
    records
        .into_iter()
        .filter(|r| seen.insert((r.spec.clone(), r.unit.method.clone(), r.unit.rep)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn record_json_round_trip_is_bitwise_exact(record in arb_record()) {
        let text = record_to_json(&record).to_string_compact();
        let doc = from_str(&text).expect("reparse");
        let back = record_from_json(&doc).expect("record shape");
        prop_assert!(record_eq(&record, &back), "{record:?}\n-> {text}\n-> {back:?}");
    }

    #[test]
    fn checkpoint_file_round_trip_preserves_all_records(
        records in prop::collection::vec(arb_record(), 0..12),
        shard in 0usize..4,
    ) {
        let records = distinct(records);
        let path = tmp_file("roundtrip");
        let header = CheckpointHeader::new("feedf00d", shard, 4);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);
        let ck = load_checkpoint(&path).expect("load");
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(&ck.header, &header);
        prop_assert!(!ck.truncated);
        prop_assert_eq!(ck.records.len(), records.len());
        for (a, b) in ck.records.iter().zip(&records) {
            prop_assert!(record_eq(a, b), "{:?} != {:?}", a, b);
        }
        // Merging an empty or populated single shard is the identity.
        let merged = merge_records("feedf00d", &[ck]).expect("merge");
        prop_assert_eq!(merged.len(), records.len());
    }

    #[test]
    fn merge_is_invariant_to_shard_arrival_order(
        records in prop::collection::vec(arb_record(), 2..16),
        rotate in 1usize..4,
    ) {
        let records = distinct(records);
        let k = 3usize;
        let shards: Vec<ShardCheckpoint> = (0..k)
            .map(|s| ShardCheckpoint {
                header: CheckpointHeader::new("ab", s, k),
                records: records
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % k == s)
                    .map(|(_, r)| r.clone())
                    .collect(),
                truncated: false,
            })
            .collect();
        let mut rotated = shards.clone();
        rotated.rotate_left(rotate % k);
        let a = merge_records("ab", &shards).expect("merge");
        let b = merge_records("ab", &rotated).expect("merge rotated");
        prop_assert_eq!(a.len(), records.len());
        // Same multiset of units either way.
        for r in &a {
            prop_assert!(b.iter().any(|x| record_eq(x, r)));
        }
    }

    #[test]
    fn duplicate_units_are_rejected(records in prop::collection::vec(arb_record(), 1..8)) {
        let mut records = distinct(records);
        records.push(records[0].clone());
        let shard = ShardCheckpoint {
            header: CheckpointHeader::new("cc", 0, 1),
            records,
            truncated: false,
        };
        prop_assert!(matches!(
            merge_records("cc", &[shard]),
            Err(CheckpointError::DuplicateUnit { .. })
        ));
    }

    #[test]
    fn foreign_fingerprints_are_rejected(records in prop::collection::vec(arb_record(), 0..4)) {
        let shard = ShardCheckpoint {
            header: CheckpointHeader::new("aaaa", 0, 1),
            records: distinct(records),
            truncated: false,
        };
        prop_assert!(matches!(
            merge_records("bbbb", &[shard]),
            Err(CheckpointError::FingerprintMismatch { .. })
        ));
    }
}

// Satellite coverage for the fleet PR: `CheckpointWriter::resume`
// commits its rewrite with tmp-write -> rename. A process can die
// between those two steps in either order's aftermath — leaving a
// stale (even hostile) `.tmp` beside an intact checkpoint, or having
// renamed and then died before appending anything. Both must resume
// cleanly with zero record loss.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resume_survives_a_crash_before_the_rename(
        records in prop::collection::vec(arb_record(), 1..8),
        garbage in prop::collection::vec(0u32..256, 0..64),
    ) {
        let records = distinct(records);
        let path = tmp_file("crash-pre-rename");
        let header = CheckpointHeader::new("dead1", 0, 1);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);

        // A previous resume died after writing its tmp but before the
        // rename: the tmp's content is untrusted (here: arbitrary
        // bytes, possibly a torn copy). The checkpoint itself is still
        // the old, intact file.
        let tmp = path.with_extension("tmp");
        let bytes: Vec<u8> = garbage.iter().map(|&b| b as u8).collect();
        std::fs::write(&tmp, &bytes).expect("plant stale tmp");

        let (w2, resumed) = CheckpointWriter::resume(&path, &header).expect("resume");
        drop(w2);
        prop_assert_eq!(resumed.len(), records.len(), "no record lost to the stale tmp");
        for (a, b) in records.iter().zip(&resumed) {
            prop_assert!(record_eq(a, b));
        }
        // The commit replaced the checkpoint; the stale tmp is gone
        // (renamed over the original), so a third resume is clean too.
        prop_assert!(!tmp.exists(), "stale tmp must not linger");
        let ck = load_checkpoint(&path).expect("reload");
        prop_assert_eq!(ck.records.len(), records.len());
        prop_assert!(!ck.truncated);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_survives_a_crash_after_the_rename(
        records in prop::collection::vec(arb_record(), 1..8),
        extra in arb_record(),
    ) {
        let mut records = distinct(records);
        let path = tmp_file("crash-post-rename");
        let header = CheckpointHeader::new("dead2", 0, 1);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);

        // First resume completes its rename and then the process dies
        // before appending anything new (writer dropped immediately).
        let (w1, first) = CheckpointWriter::resume(&path, &header).expect("first resume");
        drop(w1);
        prop_assert_eq!(first.len(), records.len());
        prop_assert!(!path.with_extension("tmp").exists());

        // Second resume sees the committed rewrite and keeps working:
        // appends land after the preserved prefix.
        let (mut w2, second) = CheckpointWriter::resume(&path, &header).expect("second resume");
        prop_assert_eq!(second.len(), records.len());
        let mut extra = extra;
        extra.unit.rep = records.iter().map(|r| r.unit.rep).max().unwrap_or(0) + 1;
        if distinct(vec![extra.clone()]).len() == 1
            && !records.iter().any(|r| {
                r.spec == extra.spec
                    && r.unit.method == extra.unit.method
                    && r.unit.rep == extra.unit.rep
            })
        {
            w2.append(&extra).expect("append after double resume");
            records.push(extra);
        }
        drop(w2);
        let ck = load_checkpoint(&path).expect("reload");
        prop_assert_eq!(ck.records.len(), records.len(), "every record survived");
        for (a, b) in records.iter().zip(&ck.records) {
            prop_assert!(record_eq(a, b));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resume_drops_a_torn_tail_even_with_a_stale_tmp_present(
        records in prop::collection::vec(arb_record(), 2..8),
    ) {
        let mut records = distinct(records);
        if records.len() < 2 {
            let mut clone = records[0].clone();
            clone.unit.rep = records[0].unit.rep + 1;
            records.push(clone);
        }
        let path = tmp_file("crash-torn-plus-tmp");
        let header = CheckpointHeader::new("dead3", 0, 1);
        let mut w = CheckpointWriter::create(&path, &header).expect("create");
        for r in &records {
            w.append(r).expect("append");
        }
        drop(w);

        // The worst combined aftermath: the checkpoint has a torn
        // final line (killed mid-append) AND a stale tmp from an
        // interrupted earlier resume.
        let full = std::fs::read_to_string(&path).expect("read");
        let keep: Vec<&str> = full.lines().take(records.len()).collect(); // header + n-1 records
        std::fs::write(&path, format!("{}\n{{\"spec\":\"to", keep.join("\n"))).expect("tear");
        std::fs::write(path.with_extension("tmp"), b"{not json").expect("plant tmp");

        let (w2, resumed) = CheckpointWriter::resume(&path, &header).expect("resume");
        drop(w2);
        prop_assert_eq!(resumed.len(), records.len() - 1, "torn tail dropped, prefix kept");
        for (a, b) in records.iter().zip(&resumed) {
            prop_assert!(record_eq(a, b));
        }
        let ck = load_checkpoint(&path).expect("reload");
        prop_assert!(!ck.truncated, "rewrite removed the torn tail for good");
        std::fs::remove_file(&path).ok();
    }
}
