//! Exactness tests: the optimised search subroutines must agree with
//! brute-force reference implementations on random instances.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::metrics::wracc;
use reds::subgroup::{BestInterval, HyperBox, SubgroupDiscovery};

/// Brute-force best single-dimension interval by WRAcc: try every pair
/// of observed values as (lower, upper) plus the half-open and
/// unrestricted variants. O(n²) — reference only.
fn brute_force_best_interval_wracc(d: &Dataset) -> f64 {
    let mut values: Vec<f64> = d.points().to_vec();
    values.sort_by(f64::total_cmp);
    values.dedup();
    let mut best = 0.0f64; // the unrestricted box has WRAcc 0
    let mut candidates: Vec<(f64, f64)> = Vec::new();
    for (i, &lo) in values.iter().enumerate() {
        for &hi in &values[i..] {
            candidates.push((lo, hi));
        }
        candidates.push((lo, f64::INFINITY));
        candidates.push((f64::NEG_INFINITY, lo));
    }
    for (lo, hi) in candidates {
        let b = HyperBox::from_bounds(vec![(lo, hi)]);
        best = best.max(wracc(&b, d));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn bi_matches_brute_force_in_one_dimension(
        raw in prop::collection::vec((0.0f64..1.0, prop::bool::ANY), 5..40),
    ) {
        let points: Vec<f64> = raw.iter().map(|r| r.0).collect();
        let labels: Vec<f64> = raw.iter().map(|r| if r.1 { 1.0 } else { 0.0 }).collect();
        let d = Dataset::new(points, labels, 1).expect("valid shape");
        let mut rng = StdRng::seed_from_u64(1);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        let bi_wracc = wracc(&result.boxes[0], &d);
        let reference = brute_force_best_interval_wracc(&d);
        prop_assert!(
            (bi_wracc - reference).abs() < 1e-9,
            "BI WRAcc {} vs brute force {}",
            bi_wracc,
            reference
        );
    }

    #[test]
    fn bi_in_two_dims_is_at_least_single_dim_optimal(
        raw in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0, prop::bool::ANY), 10..40),
    ) {
        // The beam search refines dimension by dimension; its result must
        // be at least as good as the best single-dimension interval of
        // either axis.
        let points: Vec<f64> = raw.iter().flat_map(|r| [r.0, r.1]).collect();
        let labels: Vec<f64> = raw.iter().map(|r| if r.2 { 1.0 } else { 0.0 }).collect();
        let d = Dataset::new(points, labels.clone(), 2).expect("valid shape");
        let mut rng = StdRng::seed_from_u64(2);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        let bi_wracc = wracc(&result.boxes[0], &d);
        for dim in 0..2 {
            let proj = d.select_columns(&[dim]).expect("valid column");
            let reference = brute_force_best_interval_wracc(&proj);
            prop_assert!(
                bi_wracc >= reference - 1e-9,
                "2-D BI WRAcc {} below single-dim optimum {} of dim {}",
                bi_wracc,
                reference,
                dim
            );
        }
    }
}
