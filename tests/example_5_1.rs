//! Reproduces Example 5.1 of the paper: why PRIM's interactive output
//! beats BI's single WRAcc-optimal box.
//!
//! The model has one input `a` on `[0, h]` with
//! `P(y=1|a) = 1` on `[0,1)`, `a − 1` falling on `[1,2]`, `0` beyond.
//! Two boxes are interesting: `[0,1]` (pure) and `[0,2]` (complete).
//! The paper computes `WRAcc([0,1]) > WRAcc([0,2]) ⇔ h < 3`: BI's
//! answer flips with the arbitrary input range `h`, while PRIM's
//! trajectory exposes both boxes regardless of `h`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::subgroup::{BestInterval, Prim, PrimParams, SubgroupDiscovery};

/// Dense deterministic sample of the example's soft-label function on
/// `[0, h]` (soft labels make the expectation exact, no Bernoulli noise).
fn example_data(h: f64, n: usize) -> Dataset {
    Dataset::from_fn(
        (0..n).map(|i| h * i as f64 / (n - 1) as f64).collect(),
        1,
        |x| {
            let a = x[0];
            if a < 1.0 {
                1.0
            } else if a <= 2.0 {
                (2.0 - a).clamp(0.0, 1.0) // P falls linearly 1 -> 0 on [1,2]
            } else {
                0.0
            }
        },
    )
    .expect("valid shape")
}

#[test]
fn bi_answer_depends_on_the_arbitrary_range_h() {
    let mut rng = StdRng::seed_from_u64(1);
    // h = 2.5 < 3: WRAcc favours the pure box [0,1].
    let d_small = example_data(2.5, 4_000);
    let small = BestInterval::default().discover(&d_small, &d_small, &mut rng);
    let (_, hi_small) = small.boxes[0].bound(0);
    // h = 6 > 3: WRAcc favours the complete box [0,2].
    let d_large = example_data(6.0, 4_000);
    let large = BestInterval::default().discover(&d_large, &d_large, &mut rng);
    let (_, hi_large) = large.boxes[0].bound(0);
    assert!(
        hi_small < 1.6,
        "h<3: BI should return ≈[0,1], got upper bound {hi_small}"
    );
    assert!(
        hi_large > 1.6,
        "h>3: BI should return ≈[0,2], got upper bound {hi_large}"
    );
}

#[test]
fn prim_trajectory_exposes_both_boxes_for_any_h() {
    for h in [2.5, 6.0] {
        let d = example_data(h, 4_000);
        let prim = Prim::new(PrimParams {
            // Fine peeling so the trajectory resolves both knees.
            alpha: 0.03,
            ..Default::default()
        });
        let trajectory = prim.peel_trajectory(&d);
        // Some box on the trajectory approximates the complete box [0,2]
        // and a later one the pure box [0,1] — regardless of h.
        let close_to = |target: f64| {
            trajectory.iter().any(|b| {
                let (_, hi) = b.bound(0);
                hi.is_finite() && (hi - target).abs() < 0.3
            })
        };
        assert!(close_to(2.0), "h={h}: no trajectory box near [0,2]");
        assert!(close_to(1.0), "h={h}: no trajectory box near [0,1]");
    }
}
