//! The fleet PR's acceptance criterion: a sweep distributed over
//! workers through `reds-fleet` produces a report **byte-identical**
//! to the monolithic `table3` run — under clean networks, under every
//! targeted fault (drop / duplicate / delay / truncate), under seeded
//! random fault plans, across worker kills at unit boundaries, across
//! a coordinator crash + resume, and through a zero-worker outage.
//! The lease journal is audited after every run: each work unit is
//! ingested fresh exactly once, no matter how many attempts executed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;
use std::time::Duration;

use reds_bench::sweep::{self, Sweep, SweepExecutor};
use reds_bench::Args;
use reds_fleet::{
    load_journal, run_fleet, serve_worker, FaultAction, FaultPlan, FaultProxy, FleetConfig,
    FleetError, JournalEvent, WorkerConfig,
};

/// The tiny sweep every test distributes: two specs (`2` at N=60 plus
/// the `mor800` row), 2 methods × 2 reps each — 8 units.
fn tiny_sweep() -> Sweep {
    let args = Args::from_tokens(
        [
            "--functions",
            "2",
            "--ns",
            "60",
            "--reps",
            "2",
            "--l",
            "600",
            "--l-bi",
            "500",
            "--q",
            "3",
            "--test",
            "400",
            "--methods",
            "P,RPf",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    Sweep::table3(&args)
}

/// The monolithic reference report, computed once.
fn oracle_report() -> &'static str {
    static ORACLE: OnceLock<String> = OnceLock::new();
    ORACLE.get_or_init(|| {
        let sweep = tiny_sweep();
        let out = sweep::run_shard(&sweep, 0, 1, None, false).expect("monolithic run");
        sweep::render(
            &sweep,
            &sweep::aggregate(&sweep, &out.records).expect("aggregate"),
        )
    })
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reds-fleet-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// Fast-failure coordinator settings for loopback tests.
fn test_config(workers: Vec<String>, seed: u64) -> FleetConfig {
    FleetConfig {
        workers,
        lease_units: 3,
        lease_ttl: Duration::from_secs(2),
        io_timeout: Duration::from_millis(400),
        poll_interval: Duration::from_millis(5),
        max_request_retries: 2,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        max_park_rounds: 200,
        seed,
        halt_after_ingests: None,
    }
}

fn spawn_worker(die_after_units: Option<usize>) -> reds_fleet::WorkerHandle<SweepExecutor> {
    serve_worker(
        SweepExecutor::new(tiny_sweep()),
        "127.0.0.1:0",
        WorkerConfig { die_after_units },
    )
    .expect("bind worker")
}

/// Audits the journal: every unit key of the sweep was ingested with
/// `duplicate: false` exactly once — the "no unit executed-and-ingested
/// twice" guarantee, checked from durable evidence rather than
/// in-memory counters.
fn assert_exactly_once(journal_path: &Path, sweep: &Sweep) {
    let (_, _, events) = load_journal(journal_path).expect("journal loads");
    let mut fresh: HashMap<String, usize> = HashMap::new();
    for event in &events {
        if let JournalEvent::Ingest {
            key,
            duplicate: false,
            ..
        } = event
        {
            *fresh.entry(key.clone()).or_default() += 1;
        }
    }
    let keys: Vec<String> = sweep
        .fleet_units()
        .iter()
        .map(|(fp, u)| reds::eval::checkpoint::unit_key(fp, u))
        .collect();
    assert_eq!(
        fresh.len(),
        keys.len(),
        "every unit ingested, nothing extra"
    );
    for key in &keys {
        assert_eq!(
            fresh.get(key),
            Some(&1),
            "unit {key} must be ingested fresh exactly once"
        );
    }
}

/// Runs the fleet over the given worker addresses and asserts the
/// rendered report matches the monolithic oracle byte for byte.
fn run_and_check(tag: &str, workers: Vec<String>, seed: u64) {
    let sweep = tiny_sweep();
    let dir = fresh_dir(tag);
    let outcome = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        false,
        &test_config(workers, seed),
    )
    .expect("fleet completes");
    let report = sweep::render(
        &sweep,
        &sweep::aggregate(&sweep, &outcome.records).expect("aggregate"),
    );
    assert_eq!(
        report,
        oracle_report(),
        "{tag}: fleet report must be byte-identical to the monolithic run"
    );
    // Fleet-executed records carry attempt provenance.
    assert!(
        outcome.records.iter().all(|r| r.attempt >= 1),
        "{tag}: fleet records must record their lease attempt"
    );
    assert_exactly_once(&dir.join("fleet-journal.jsonl"), &sweep);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_two_worker_fleet_matches_monolithic() {
    let w1 = spawn_worker(None);
    let w2 = spawn_worker(None);
    run_and_check(
        "clean",
        vec![w1.addr().to_string(), w2.addr().to_string()],
        1,
    );
    w1.shutdown();
    w2.shutdown();
}

/// Fault plans 1–4: each targeted fault class on its own, applied to
/// the only worker's traffic, must not change a byte of the report.
#[test]
fn targeted_fault_plans_keep_reports_identical() {
    let plans: [(&str, FaultPlan); 4] = [
        (
            "drop",
            FaultPlan {
                // Swallow early requests and one reply.
                to_worker: vec![FaultAction::Drop, FaultAction::Pass, FaultAction::Drop],
                to_coordinator: vec![FaultAction::Pass, FaultAction::Drop],
            },
        ),
        (
            "duplicate",
            FaultPlan {
                to_worker: vec![FaultAction::Duplicate; 6],
                to_coordinator: vec![FaultAction::Duplicate; 6],
            },
        ),
        (
            "delay",
            FaultPlan {
                to_worker: vec![FaultAction::DelayMs(60); 4],
                to_coordinator: vec![FaultAction::DelayMs(60); 4],
            },
        ),
        (
            "truncate",
            FaultPlan {
                // Tear the hello reply mid-frame, then a later reply.
                to_worker: vec![FaultAction::Pass; 3],
                to_coordinator: vec![
                    FaultAction::Truncate(5),
                    FaultAction::Pass,
                    FaultAction::Truncate(9),
                ],
            },
        ),
    ];
    for (name, plan) in plans {
        let worker = spawn_worker(None);
        let proxy = FaultProxy::start(worker.addr(), plan).expect("proxy");
        run_and_check(&format!("fault-{name}"), vec![proxy.addr().to_string()], 2);
        drop(proxy);
        worker.shutdown();
    }
}

/// Fault plans 5+: seeded random mixes of all fault classes in both
/// directions. A failure names its seed for exact replay.
#[test]
fn seeded_fault_plans_keep_reports_identical() {
    for seed in [11u64, 12, 13] {
        let worker = spawn_worker(None);
        let plan = FaultPlan::seeded(seed, 48, 0.3);
        let proxy = FaultProxy::start(worker.addr(), plan).expect("proxy");
        run_and_check(
            &format!("seeded-{seed}"),
            vec![proxy.addr().to_string()],
            seed,
        );
        drop(proxy);
        worker.shutdown();
    }
}

#[test]
fn worker_killed_mid_sweep_is_reassigned() {
    // Worker 1 dies abruptly after its second unit (that unit's record
    // is discarded — executed but never acknowledged); worker 2 picks
    // up the expired lease's remainder.
    let doomed = spawn_worker(Some(2));
    let healthy = spawn_worker(None);
    run_and_check(
        "worker-kill",
        vec![doomed.addr().to_string(), healthy.addr().to_string()],
        3,
    );
    assert!(doomed.died(), "the doomed worker's crash hook must fire");
    healthy.shutdown();
}

#[test]
fn coordinator_crash_resume_completes_exactly_once() {
    let sweep = tiny_sweep();
    let dir = fresh_dir("halt-resume");
    let worker = spawn_worker(None);
    let workers = vec![worker.addr().to_string()];

    // First coordinator "crashes" (halts) after 3 durable ingests.
    let mut config = test_config(workers.clone(), 4);
    config.halt_after_ingests = Some(3);
    let partial = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        false,
        &config,
    )
    .expect("halted run still returns");
    assert!(partial.halted, "halt hook fired");
    assert!(partial.ingested >= 3);

    // A second coordinator resumes from the same durable files.
    let outcome = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        true,
        &test_config(workers, 5),
    )
    .expect("resumed run completes");
    assert_eq!(
        outcome.records.len(),
        sweep.total_units(),
        "resume ends with exactly one record per unit"
    );
    let report = sweep::render(
        &sweep,
        &sweep::aggregate(&sweep, &outcome.records).expect("aggregate"),
    );
    assert_eq!(report, oracle_report(), "resumed report is byte-identical");
    assert_exactly_once(&dir.join("fleet-journal.jsonl"), &sweep);
    worker.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_workers_parks_then_resumes_without_losing_work() {
    let sweep = tiny_sweep();
    let dir = fresh_dir("parked");

    // No worker listening anywhere: the coordinator parks, burns its
    // park budget, and gives up with a resumable error.
    let mut config = test_config(vec!["127.0.0.1:9".to_string()], 6);
    config.max_park_rounds = 3;
    let err = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        false,
        &config,
    )
    .expect_err("no workers -> fleet lost");
    match err {
        FleetError::FleetLost { pending } => assert_eq!(pending, sweep.total_units()),
        other => panic!("expected FleetLost, got {other}"),
    }

    // Workers come back; a resume finishes the sweep.
    let worker = spawn_worker(None);
    let outcome = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("shard-0-of-1.jsonl"),
        &dir.join("fleet-journal.jsonl"),
        true,
        &test_config(vec![worker.addr().to_string()], 7),
    )
    .expect("resume after outage");
    let report = sweep::render(
        &sweep,
        &sweep::aggregate(&sweep, &outcome.records).expect("aggregate"),
    );
    assert_eq!(
        report,
        oracle_report(),
        "post-outage report is byte-identical"
    );
    assert_exactly_once(&dir.join("fleet-journal.jsonl"), &sweep);
    worker.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_errors_are_rejected_up_front() {
    let sweep = tiny_sweep();
    let dir = fresh_dir("config");
    let err = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("s.jsonl"),
        &dir.join("j.jsonl"),
        false,
        &test_config(Vec::new(), 0),
    )
    .expect_err("no workers configured");
    assert!(matches!(err, FleetError::Config(_)));

    // A worker serving a *different* sweep is refused at handshake.
    let other_args = Args::from_tokens(
        ["--functions", "2", "--ns", "70", "--reps", "1"]
            .iter()
            .map(|s| s.to_string()),
    );
    let worker = serve_worker(
        SweepExecutor::new(Sweep::table3(&other_args)),
        "127.0.0.1:0",
        WorkerConfig::default(),
    )
    .expect("bind");
    let err = run_fleet(
        &sweep.fingerprint(),
        &sweep.fleet_units(),
        &dir.join("s.jsonl"),
        &dir.join("j.jsonl"),
        false,
        &test_config(vec![worker.addr().to_string()], 0),
    )
    .expect_err("fingerprint mismatch");
    assert!(
        matches!(err, FleetError::Config(_)),
        "mismatched sweeps must fail fast, not retry forever"
    );
    worker.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
