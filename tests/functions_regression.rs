//! Regression tests pinning the Table 1 calibration of every benchmark
//! function: positive shares under uniform inputs must stay close to
//! the published column (tolerances loose enough for Monte-Carlo error,
//! tight enough to catch any accidental change to the formulas).

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::functions::{all_functions, by_name, lake_dataset, tgl_dataset};

/// (name, Table 1 share %) for all functions cheap enough to estimate
/// in a test (the DSGC simulator is covered separately).
const TABLE1_SHARES: [(&str, f64); 32] = [
    ("1", 47.6),
    ("2", 25.7),
    ("3", 8.2),
    ("4", 18.0),
    ("5", 8.0),
    ("6", 8.1),
    ("7", 35.0),
    ("8", 10.9),
    ("102", 67.2),
    ("borehole", 30.9),
    ("ellipse", 22.5),
    ("hart3", 33.5),
    ("hart4", 30.1),
    ("hart6sc", 22.6),
    ("ishigami", 25.5),
    ("linketal06dec", 25.3),
    ("linketal06simple", 28.5),
    ("linketal06sin", 27.2),
    ("loepetal13", 38.9),
    ("moon10hd", 42.1),
    ("moon10hdc1", 34.2),
    ("moon10low", 45.6),
    ("morretal06", 34.5),
    ("morris", 30.1),
    ("oakoh04", 24.9),
    ("otlcircuit", 22.5),
    ("piston", 36.8),
    ("soblev99", 41.3),
    ("sobol", 39.2),
    ("welchetal92", 35.6),
    ("willetal06", 24.9),
    ("wingweight", 37.8),
];

#[test]
fn all_shares_match_table1_within_tolerance() {
    for (name, target) in TABLE1_SHARES {
        let f = by_name(name).unwrap_or_else(|| panic!("{name} missing from registry"));
        let mut rng = StdRng::seed_from_u64(0x7AB1E);
        let share = 100.0 * f.estimate_share(20_000, &mut rng);
        assert!(
            (share - target).abs() < 3.0,
            "{name}: measured share {share:.1}% vs Table 1 {target}%"
        );
    }
}

#[test]
fn dsgc_share_is_calibrated() {
    let f = by_name("dsgc").expect("registry");
    let mut rng = StdRng::seed_from_u64(0x7AB1E);
    // 300 simulations keep the test under a few seconds in release mode.
    let share = 100.0 * f.estimate_share(300, &mut rng);
    assert!(
        (40.0..=62.0).contains(&share),
        "dsgc stable share {share:.1}% drifted from the ~50% calibration"
    );
}

#[test]
fn registry_covers_exactly_table1() {
    assert_eq!(all_functions().len(), 33);
    // Every tabled name resolves; `dsgc` completes the set of 33.
    for (name, _) in TABLE1_SHARES {
        assert!(by_name(name).is_some(), "{name}");
    }
    assert!(by_name("dsgc").is_some());
}

#[test]
fn third_party_datasets_are_pinned() {
    let tgl = tgl_dataset();
    assert_eq!((tgl.n(), tgl.m()), (882, 9));
    let share = 100.0 * tgl.pos_rate();
    assert!((6.0..=15.0).contains(&share), "TGL share {share:.1}%");
    let lake = lake_dataset();
    assert_eq!((lake.n(), lake.m()), (1000, 5));
    let share = 100.0 * lake.pos_rate();
    assert!((25.0..=55.0).contains(&share), "lake share {share:.1}%");
}

#[test]
fn active_input_declarations_are_truthful() {
    // Perturbing a declared-inactive input must never change the output;
    // checked on a probe grid for every function except the expensive
    // DSGC simulator (whose 12 inputs are all active by construction).
    for f in all_functions() {
        if f.name() == "dsgc" {
            continue;
        }
        let mut base = vec![0.3; f.m()];
        let y0 = f.raw(&base);
        for j in 0..f.m() {
            if f.active_inputs().contains(&j) {
                continue;
            }
            for v in [0.05, 0.5, 0.95] {
                base[j] = v;
                let y = f.raw(&base);
                assert!(
                    (y - y0).abs() < 1e-9,
                    "{}: inactive input {j} changed output ({y0} -> {y})",
                    f.name()
                );
            }
            base[j] = 0.3;
        }
    }
}
