//! Property-based tests of the metamodel substrate: predictions stay in
//! range, training tolerates degenerate data, determinism under seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, RegressionTree, Svm, SvmParams,
    TreeParams,
};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..4, 20usize..80).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0.0f64..1.0, n * m),
            prop::collection::vec(prop::bool::ANY, n),
            Just(m),
        )
            .prop_map(|(points, labels, m)| {
                let labels = labels
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect();
                Dataset::new(points, labels, m).expect("valid shape")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_predictions_interpolate_the_label_range(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams::default(),
            &mut rng,
        );
        // Leaf values are means of 0/1 labels: always inside [0, 1].
        for (x, _) in d.iter() {
            let p = tree.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "tree prediction {}", p);
        }
    }

    #[test]
    fn unlimited_tree_memorises_distinct_points(d in dataset_strategy()) {
        // With min_samples_leaf = 1 and unlimited depth, a tree fitted on
        // points with distinct coordinates reproduces its training labels.
        let mut rng = StdRng::seed_from_u64(2);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams { max_depth: 64, ..Default::default() },
            &mut rng,
        );
        // Points can collide by construction; only check rows whose
        // coordinates are unique in the dataset.
        'rows: for i in 0..d.n() {
            for j in 0..d.n() {
                if i != j && d.point(i) == d.point(j) {
                    continue 'rows;
                }
            }
            prop_assert!((tree.predict(d.point(i)) - d.label(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(3);
        let params = RandomForestParams { n_trees: 15, ..Default::default() };
        let forest = RandomForest::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = forest.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "forest prediction {}", p);
        }
    }

    #[test]
    fn gbdt_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(4);
        let params = GbdtParams { n_rounds: 10, ..Default::default() };
        let model = Gbdt::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = model.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "gbdt prediction {}", p);
        }
    }

    #[test]
    fn svm_predictions_are_hard_labels(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(5);
        let params = SvmParams { max_iter: 30, ..Default::default() };
        let svm = Svm::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = svm.predict(x);
            prop_assert!(p == 0.0 || p == 1.0, "svm prediction {}", p);
        }
    }

    #[test]
    fn forest_is_deterministic_under_seed(d in dataset_strategy()) {
        let params = RandomForestParams { n_trees: 8, ..Default::default() };
        let a = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let b = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let x = vec![0.5; d.m()];
        prop_assert_eq!(a.predict(&x), b.predict(&x));
    }
}

// ---------------------------------------------------------------------
// Kernel bit-equivalence: the scalar and SIMD backends in
// `reds::metamodel::kernels` must agree to the exact bit on every
// input shape — unaligned batch sizes, remainder lanes (`len % 4 ≠ 0`),
// non-finite feature values, and degenerate trees. These drive the
// kernels through their explicit-`Kernel` entry points, so they are
// free of global dispatch state and run under the parallel harness.
// ---------------------------------------------------------------------

use reds::metamodel::kernels::{self, Kernel};

/// Every kernel this machine can execute (scalar always; AVX2 when the
/// CPU has it — on scalar-only hardware the suite degenerates to
/// scalar-vs-scalar and still validates the per-point reference).
fn available_kernels() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Scalar];
    if kernels::avx2_supported() {
        ks.push(Kernel::Avx2);
    }
    ks
}

/// A query value that may be an ordinary coordinate or a traversal
/// stress case (±∞ / NaN, exact threshold hits).
fn query_value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 0.0f64..1.0,
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::NAN),
        1 => Just(0.5f64), // likely exact threshold tie
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_kernels_agree_bitwise_with_per_point_reference(
        d in dataset_strategy(),
        rows in 0usize..23,
        query in prop::collection::vec(query_value_strategy(), 0..23 * 4),
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams::default(),
            &mut rng,
        );
        let m = d.m();
        let rows = rows.min(query.len() / m);
        let query = &query[..rows * m];
        // Reference: the scalar per-point walk.
        let expected: Vec<f64> = query.chunks_exact(m).map(|x| tree.flat().predict(x)).collect();
        for kernel in available_kernels() {
            let mut acc = vec![0.0f64; rows];
            kernels::accumulate_tree(kernel, tree.flat(), query, m, &mut acc);
            for (i, (a, e)) in acc.iter().zip(&expected).enumerate() {
                prop_assert!(
                    a.to_bits() == e.to_bits(),
                    "{:?} row {}: {} vs {}", kernel, i, a, e
                );
            }
        }
    }

    #[test]
    fn squared_distance_kernels_agree_bitwise(
        len in 0usize..21,
        raw in prop::collection::vec((query_value_strategy(), query_value_strategy()), 21),
    ) {
        let a: Vec<f64> = raw.iter().take(len).map(|p| p.0).collect();
        let b: Vec<f64> = raw.iter().take(len).map(|p| p.1).collect();
        let want = kernels::squared_distance(Kernel::Scalar, &a, &b);
        for kernel in available_kernels() {
            let got = kernels::squared_distance(kernel, &a, &b);
            // NaN results must be NaN everywhere, but their payload
            // bits are compiler-unspecified (see the kernel docs); all
            // other results are bit-exact.
            prop_assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "{:?} len {}: {} vs {}", kernel, len, got, want
            );
        }
    }

    #[test]
    fn rbf_expansion_kernels_agree_bitwise(
        m in 1usize..9,
        n_sv in 0usize..6,
        rows in 0usize..7,
        values in prop::collection::vec(-1.0f64..1.0, 6 * 9 + 7 * 9 + 6),
        gamma in 0.1f64..4.0,
    ) {
        // Build the lane-interleaved panel layout `Svm::assemble`
        // produces: 4 support vectors per panel (zero-padded lanes and
        // dimensions), coefficients padded to whole panels.
        let m_pad = kernels::padded_width(m);
        let n_panels = n_sv.div_ceil(4);
        let mut svs = vec![0.0f64; n_panels * 4 * m_pad];
        for i in 0..n_sv {
            let panel = &mut svs[(i / 4) * 4 * m_pad..(i / 4 + 1) * 4 * m_pad];
            for j in 0..m {
                panel[4 * j + i % 4] = values[i * m + j];
            }
        }
        let mut coef = vec![0.0f64; 4 * n_panels];
        coef[..n_sv].copy_from_slice(&values[6 * 9 + 7 * 9..6 * 9 + 7 * 9 + n_sv]);
        let query: Vec<f64> = values[6 * 9..6 * 9 + rows * m].to_vec();
        let mut reference = vec![0.0f64; rows];
        kernels::rbf_expand(
            Kernel::Scalar, &svs, &coef, 0.25, gamma, m_pad, &query, m,
            &mut reference,
        );
        for kernel in available_kernels() {
            let mut out = vec![0.0f64; rows];
            kernels::rbf_expand(
                kernel, &svs, &coef, 0.25, gamma, m_pad, &query, m,
                &mut out,
            );
            for (i, (a, e)) in out.iter().zip(&reference).enumerate() {
                prop_assert!(
                    a.to_bits() == e.to_bits() || (a.is_nan() && e.is_nan()),
                    "{:?} row {}: {} vs {}", kernel, i, a, e
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// vexp: the canonical polynomial `exp` behind the RBF expansion and the
// GBDT sigmoid. Scalar and AVX2 must agree payload-exactly on *every*
// 64-bit input pattern (unlike squared_distance, vexp blends the input
// NaN bits through untouched), the polynomial must stay within a small
// ULP envelope of libm across the finite range, and results are never
// negative. These drive the explicit-backend `exp_in_place` entry
// point, so they are free of global dispatch state.
// ---------------------------------------------------------------------

use reds::metamodel::kernels::{vexp, ExpBackend};

/// ULP distance between two non-negative floats (`exp` never produces a
/// negative or `-0.0` result, so the bit patterns order monotonically).
fn ulp_distance(a: f64, b: f64) -> u64 {
    a.to_bits().abs_diff(b.to_bits())
}

/// An `exp` input that may be any 64-bit pattern (all NaN payloads, all
/// denormals, ±∞) or a value from the numerically interesting ranges.
fn exp_input_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        3 => (u64::MIN..=u64::MAX).prop_map(f64::from_bits),
        3 => -750.0f64..710.0,
        2 => -1.0f64..1.0, // the RBF hot range: −γ·d² near zero
        1 => (1u64..=4_503_599_627_370_495u64).prop_map(f64::from_bits), // denormals
        1 => prop_oneof![
            Just(f64::INFINITY), Just(f64::NEG_INFINITY), Just(f64::NAN),
            Just(vexp::EXP_OVERFLOW), Just(vexp::EXP_UNDERFLOW),
            Just(0.0), Just(-0.0),
        ],
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vexp_kernels_agree_payload_exactly_on_any_bit_pattern(
        xs in prop::collection::vec(exp_input_strategy(), 0..23),
    ) {
        let expected: Vec<f64> = xs.iter().map(|&x| vexp::exp_poly(x)).collect();
        for kernel in available_kernels() {
            let mut out = xs.clone();
            kernels::exp_in_place(kernel, ExpBackend::Poly, &mut out);
            for (i, (a, e)) in out.iter().zip(&expected).enumerate() {
                // Payload-exact, NaN included: vexp blends input bits.
                prop_assert!(
                    a.to_bits() == e.to_bits(),
                    "{:?} lane {}: exp({}) = {:016x} vs {:016x}",
                    kernel, i, xs[i], a.to_bits(), e.to_bits()
                );
            }
        }
    }

    #[test]
    fn vexp_stays_within_the_ulp_contract_of_libm(
        xs in prop::collection::vec(-750.0f64..710.0, 1..64),
    ) {
        for &x in &xs {
            let got = vexp::exp_poly(x);
            let want = x.exp();
            prop_assert!(
                ulp_distance(got, want) <= 2,
                "exp_poly({}) = {:e} is {} ULP from libm {:e}",
                x, got, ulp_distance(got, want), want
            );
        }
    }

    #[test]
    fn vexp_is_never_negative_and_weakly_monotone(
        xs in prop::collection::vec(exp_input_strategy(), 1..64),
        base in -745.0f64..709.0,
    ) {
        for &x in &xs {
            let e = vexp::exp_poly(x);
            prop_assert!(
                e.is_nan() || e.to_bits() >> 63 == 0,
                "exp_poly({}) = {} has its sign bit set", x, e
            );
        }
        // Weak monotonicity on a coarse grid: a 1e-3 step moves exp by
        // ~0.1%, far beyond the polynomial's ULP-level noise, so
        // ordering must be preserved (strict per-ULP monotonicity is
        // not promised across 2^k boundaries).
        let mut prev = vexp::exp_poly(base);
        for step in 1..=20 {
            let next = vexp::exp_poly(base + step as f64 * 1e-3);
            prop_assert!(next >= prev, "exp not monotone at {} + {}e-3", base, step);
            prev = next;
        }
    }
}

#[test]
fn vexp_special_values_match_the_documented_table() {
    use reds::metamodel::kernels::vexp::{EXP_OVERFLOW, EXP_UNDERFLOW};
    // Overflow / underflow thresholds and the values straddling them.
    assert_eq!(vexp::exp_poly(EXP_OVERFLOW), f64::INFINITY);
    assert_eq!(vexp::exp_poly(f64::INFINITY), f64::INFINITY);
    assert!(vexp::exp_poly(next_down(EXP_OVERFLOW)).is_finite());
    assert_eq!(vexp::exp_poly(EXP_UNDERFLOW).to_bits(), 0);
    assert_eq!(vexp::exp_poly(f64::NEG_INFINITY).to_bits(), 0);
    // (One ULP above the cutoff still rounds to zero — the threshold
    // sits essentially at ln 2⁻¹⁰⁷⁵ — so probe a bit further in.)
    assert!(vexp::exp_poly(-745.0) > 0.0);
    // NaN payloads pass through bit-exactly, sign included.
    for bits in [0x7FF8_0000_0000_0001u64, 0xFFF8_DEAD_BEEF_0001u64] {
        assert_eq!(vexp::exp_poly(f64::from_bits(bits)).to_bits(), bits);
    }
    // exp(0) is exactly 1; denormal inputs land there too.
    assert_eq!(vexp::exp_poly(0.0), 1.0);
    assert_eq!(vexp::exp_poly(-0.0), 1.0);
    assert_eq!(vexp::exp_poly(f64::from_bits(1)), 1.0);
    // Deep negative inputs produce denormal outputs, same as libm.
    let deep = vexp::exp_poly(-744.5);
    assert!(deep > 0.0 && !deep.is_normal(), "exp(-744.5) = {deep:e}");
}

/// `f64::next_down` (stable since 1.86) spelled out so the suite
/// builds on the MSRV toolchain.
fn next_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

#[test]
fn kernels_handle_singleton_trees_and_empty_batches() {
    // A tree that is a single leaf (constant targets) and the empty
    // batch must work on every backend.
    let pts: Vec<f64> = (0..40).map(|i| i as f64).collect();
    let ys = vec![0.25; 40];
    let idx: Vec<usize> = (0..40).collect();
    let tree = RegressionTree::fit(
        &pts,
        &ys,
        1,
        &idx,
        &TreeParams::default(),
        &mut StdRng::seed_from_u64(8),
    );
    assert_eq!(tree.n_nodes(), 1, "constant targets must yield one leaf");
    for kernel in available_kernels() {
        let mut acc = vec![0.0f64; 9]; // 9 rows: 2 groups of 4 + remainder
        let query = vec![3.0f64; 9];
        kernels::accumulate_tree(kernel, tree.flat(), &query, 1, &mut acc);
        for v in &acc {
            assert_eq!(v.to_bits(), 0.25f64.to_bits(), "{kernel:?}");
        }
        let mut empty: Vec<f64> = Vec::new();
        kernels::accumulate_tree(kernel, tree.flat(), &[], 1, &mut empty);
        assert!(empty.is_empty());
    }
}
