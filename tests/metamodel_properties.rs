//! Property-based tests of the metamodel substrate: predictions stay in
//! range, training tolerates degenerate data, determinism under seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, RegressionTree, Svm, SvmParams,
    TreeParams,
};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..4, 20usize..80).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0.0f64..1.0, n * m),
            prop::collection::vec(prop::bool::ANY, n),
            Just(m),
        )
            .prop_map(|(points, labels, m)| {
                let labels = labels
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect();
                Dataset::new(points, labels, m).expect("valid shape")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_predictions_interpolate_the_label_range(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams::default(),
            &mut rng,
        );
        // Leaf values are means of 0/1 labels: always inside [0, 1].
        for (x, _) in d.iter() {
            let p = tree.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "tree prediction {}", p);
        }
    }

    #[test]
    fn unlimited_tree_memorises_distinct_points(d in dataset_strategy()) {
        // With min_samples_leaf = 1 and unlimited depth, a tree fitted on
        // points with distinct coordinates reproduces its training labels.
        let mut rng = StdRng::seed_from_u64(2);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams { max_depth: 64, ..Default::default() },
            &mut rng,
        );
        // Points can collide by construction; only check rows whose
        // coordinates are unique in the dataset.
        'rows: for i in 0..d.n() {
            for j in 0..d.n() {
                if i != j && d.point(i) == d.point(j) {
                    continue 'rows;
                }
            }
            prop_assert!((tree.predict(d.point(i)) - d.label(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(3);
        let params = RandomForestParams { n_trees: 15, ..Default::default() };
        let forest = RandomForest::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = forest.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "forest prediction {}", p);
        }
    }

    #[test]
    fn gbdt_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(4);
        let params = GbdtParams { n_rounds: 10, ..Default::default() };
        let model = Gbdt::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = model.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "gbdt prediction {}", p);
        }
    }

    #[test]
    fn svm_predictions_are_hard_labels(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(5);
        let params = SvmParams { max_iter: 30, ..Default::default() };
        let svm = Svm::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = svm.predict(x);
            prop_assert!(p == 0.0 || p == 1.0, "svm prediction {}", p);
        }
    }

    #[test]
    fn forest_is_deterministic_under_seed(d in dataset_strategy()) {
        let params = RandomForestParams { n_trees: 8, ..Default::default() };
        let a = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let b = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let x = vec![0.5; d.m()];
        prop_assert_eq!(a.predict(&x), b.predict(&x));
    }
}

// ---------------------------------------------------------------------
// Kernel bit-equivalence: the scalar and SIMD backends in
// `reds::metamodel::kernels` must agree to the exact bit on every
// input shape — unaligned batch sizes, remainder lanes (`len % 4 ≠ 0`),
// non-finite feature values, and degenerate trees. These drive the
// kernels through their explicit-`Kernel` entry points, so they are
// free of global dispatch state and run under the parallel harness.
// ---------------------------------------------------------------------

use reds::metamodel::kernels::{self, Kernel};

/// Every kernel this machine can execute (scalar always; AVX2 when the
/// CPU has it — on scalar-only hardware the suite degenerates to
/// scalar-vs-scalar and still validates the per-point reference).
fn available_kernels() -> Vec<Kernel> {
    let mut ks = vec![Kernel::Scalar];
    if kernels::avx2_supported() {
        ks.push(Kernel::Avx2);
    }
    ks
}

/// A query value that may be an ordinary coordinate or a traversal
/// stress case (±∞ / NaN, exact threshold hits).
fn query_value_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 0.0f64..1.0,
        1 => Just(f64::INFINITY),
        1 => Just(f64::NEG_INFINITY),
        1 => Just(f64::NAN),
        1 => Just(0.5f64), // likely exact threshold tie
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_kernels_agree_bitwise_with_per_point_reference(
        d in dataset_strategy(),
        rows in 0usize..23,
        query in prop::collection::vec(query_value_strategy(), 0..23 * 4),
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams::default(),
            &mut rng,
        );
        let m = d.m();
        let rows = rows.min(query.len() / m);
        let query = &query[..rows * m];
        // Reference: the scalar per-point walk.
        let expected: Vec<f64> = query.chunks_exact(m).map(|x| tree.flat().predict(x)).collect();
        for kernel in available_kernels() {
            let mut acc = vec![0.0f64; rows];
            kernels::accumulate_tree(kernel, tree.flat(), query, m, &mut acc);
            for (i, (a, e)) in acc.iter().zip(&expected).enumerate() {
                prop_assert!(
                    a.to_bits() == e.to_bits(),
                    "{:?} row {}: {} vs {}", kernel, i, a, e
                );
            }
        }
    }

    #[test]
    fn squared_distance_kernels_agree_bitwise(
        len in 0usize..21,
        raw in prop::collection::vec((query_value_strategy(), query_value_strategy()), 21),
    ) {
        let a: Vec<f64> = raw.iter().take(len).map(|p| p.0).collect();
        let b: Vec<f64> = raw.iter().take(len).map(|p| p.1).collect();
        let want = kernels::squared_distance(Kernel::Scalar, &a, &b);
        for kernel in available_kernels() {
            let got = kernels::squared_distance(kernel, &a, &b);
            // NaN results must be NaN everywhere, but their payload
            // bits are compiler-unspecified (see the kernel docs); all
            // other results are bit-exact.
            prop_assert!(
                got.to_bits() == want.to_bits() || (got.is_nan() && want.is_nan()),
                "{:?} len {}: {} vs {}", kernel, len, got, want
            );
        }
    }

    #[test]
    fn rbf_expansion_kernels_agree_bitwise(
        m in 1usize..9,
        n_sv in 0usize..6,
        rows in 0usize..7,
        values in prop::collection::vec(-1.0f64..1.0, 6 * 9 + 7 * 9 + 6),
        gamma in 0.1f64..4.0,
    ) {
        let m_pad = kernels::padded_width(m);
        let mut svs = vec![0.0f64; n_sv * m_pad];
        for (i, sv) in svs.chunks_exact_mut(m_pad).enumerate() {
            sv[..m].copy_from_slice(&values[i * m..(i + 1) * m]);
        }
        let coef: Vec<f64> = values[6 * 9 + 7 * 9..6 * 9 + 7 * 9 + n_sv].to_vec();
        let query: Vec<f64> = values[6 * 9..6 * 9 + rows * m].to_vec();
        let mut reference = vec![0.0f64; rows];
        let mut scratch = vec![0.0f64; m_pad];
        kernels::rbf_expand(
            Kernel::Scalar, &svs, &coef, 0.25, gamma, m_pad, &query, m,
            &mut scratch, &mut reference,
        );
        for kernel in available_kernels() {
            let mut out = vec![0.0f64; rows];
            kernels::rbf_expand(
                kernel, &svs, &coef, 0.25, gamma, m_pad, &query, m,
                &mut scratch, &mut out,
            );
            for (i, (a, e)) in out.iter().zip(&reference).enumerate() {
                prop_assert!(
                    a.to_bits() == e.to_bits() || (a.is_nan() && e.is_nan()),
                    "{:?} row {}: {} vs {}", kernel, i, a, e
                );
            }
        }
    }
}

#[test]
fn kernels_handle_singleton_trees_and_empty_batches() {
    // A tree that is a single leaf (constant targets) and the empty
    // batch must work on every backend.
    let pts: Vec<f64> = (0..40).map(|i| i as f64).collect();
    let ys = vec![0.25; 40];
    let idx: Vec<usize> = (0..40).collect();
    let tree = RegressionTree::fit(
        &pts,
        &ys,
        1,
        &idx,
        &TreeParams::default(),
        &mut StdRng::seed_from_u64(8),
    );
    assert_eq!(tree.n_nodes(), 1, "constant targets must yield one leaf");
    for kernel in available_kernels() {
        let mut acc = vec![0.0f64; 9]; // 9 rows: 2 groups of 4 + remainder
        let query = vec![3.0f64; 9];
        kernels::accumulate_tree(kernel, tree.flat(), &query, 1, &mut acc);
        for v in &acc {
            assert_eq!(v.to_bits(), 0.25f64.to_bits(), "{kernel:?}");
        }
        let mut empty: Vec<f64> = Vec::new();
        kernels::accumulate_tree(kernel, tree.flat(), &[], 1, &mut empty);
        assert!(empty.is_empty());
    }
}
