//! Property-based tests of the metamodel substrate: predictions stay in
//! range, training tolerates degenerate data, determinism under seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, RegressionTree, Svm, SvmParams,
    TreeParams,
};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..4, 20usize..80).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0.0f64..1.0, n * m),
            prop::collection::vec(prop::bool::ANY, n),
            Just(m),
        )
            .prop_map(|(points, labels, m)| {
                let labels = labels
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect();
                Dataset::new(points, labels, m).expect("valid shape")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tree_predictions_interpolate_the_label_range(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(1);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams::default(),
            &mut rng,
        );
        // Leaf values are means of 0/1 labels: always inside [0, 1].
        for (x, _) in d.iter() {
            let p = tree.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "tree prediction {}", p);
        }
    }

    #[test]
    fn unlimited_tree_memorises_distinct_points(d in dataset_strategy()) {
        // With min_samples_leaf = 1 and unlimited depth, a tree fitted on
        // points with distinct coordinates reproduces its training labels.
        let mut rng = StdRng::seed_from_u64(2);
        let idx: Vec<usize> = (0..d.n()).collect();
        let tree = RegressionTree::fit(
            d.points(),
            d.labels(),
            d.m(),
            &idx,
            &TreeParams { max_depth: 64, ..Default::default() },
            &mut rng,
        );
        // Points can collide by construction; only check rows whose
        // coordinates are unique in the dataset.
        'rows: for i in 0..d.n() {
            for j in 0..d.n() {
                if i != j && d.point(i) == d.point(j) {
                    continue 'rows;
                }
            }
            prop_assert!((tree.predict(d.point(i)) - d.label(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(3);
        let params = RandomForestParams { n_trees: 15, ..Default::default() };
        let forest = RandomForest::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = forest.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "forest prediction {}", p);
        }
    }

    #[test]
    fn gbdt_predictions_are_probabilities(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(4);
        let params = GbdtParams { n_rounds: 10, ..Default::default() };
        let model = Gbdt::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = model.predict(x);
            prop_assert!((0.0..=1.0).contains(&p), "gbdt prediction {}", p);
        }
    }

    #[test]
    fn svm_predictions_are_hard_labels(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(5);
        let params = SvmParams { max_iter: 30, ..Default::default() };
        let svm = Svm::fit(&d, &params, &mut rng);
        for (x, _) in d.iter() {
            let p = svm.predict(x);
            prop_assert!(p == 0.0 || p == 1.0, "svm prediction {}", p);
        }
    }

    #[test]
    fn forest_is_deterministic_under_seed(d in dataset_strategy()) {
        let params = RandomForestParams { n_trees: 8, ..Default::default() };
        let a = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let b = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(6));
        let x = vec![0.5; d.m()];
        prop_assert_eq!(a.predict(&x), b.predict(&x));
    }
}
