//! Property-based tests of the quality metrics (§4 invariants).

use proptest::prelude::*;
use reds::data::Dataset;
use reds::metrics::{
    consistency, dominates, pairwise_consistency, pareto_front, pr_auc, precision, recall, wracc,
};
use reds::subgroup::HyperBox;

fn boxes_strategy(m: usize) -> impl Strategy<Value = HyperBox> {
    prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), m).prop_map(|pairs| {
        HyperBox::from_bounds(
            pairs
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect(),
        )
    })
}

fn dataset_strategy(m: usize) -> impl Strategy<Value = Dataset> {
    (30usize..100).prop_flat_map(move |n| {
        (
            prop::collection::vec(0.0f64..1.0, n * m),
            prop::collection::vec(0.0f64..=1.0, n),
        )
            .prop_map(move |(points, labels)| Dataset::new(points, labels, m).expect("valid shape"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn precision_recall_are_probabilities(
        b in boxes_strategy(3),
        d in dataset_strategy(3),
    ) {
        let p = precision(&b, &d);
        let r = recall(&b, &d);
        prop_assert!((0.0..=1.0).contains(&p), "precision {}", p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&r), "recall {}", r);
    }

    #[test]
    fn wracc_is_bounded_by_quarter(
        b in boxes_strategy(3),
        d in dataset_strategy(3),
    ) {
        // WRAcc = (n/N)(p − p0) ∈ [−0.25, 0.25] for any box.
        let w = wracc(&b, &d);
        prop_assert!(w.abs() <= 0.25 + 1e-12, "wracc {}", w);
    }

    #[test]
    fn full_box_has_zero_wracc_and_unit_recall(d in dataset_strategy(4)) {
        let full = HyperBox::unbounded(4);
        prop_assert!(wracc(&full, &d).abs() < 1e-12);
        if d.n_pos() > 0.0 {
            prop_assert!((recall(&full, &d) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pr_auc_is_bounded(
        b1 in boxes_strategy(3),
        b2 in boxes_strategy(3),
        d in dataset_strategy(3),
    ) {
        let auc = pr_auc(&[HyperBox::unbounded(3), b1, b2], &d);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc), "auc {}", auc);
    }

    #[test]
    fn consistency_is_symmetric_and_bounded(
        a in boxes_strategy(3),
        b in boxes_strategy(3),
    ) {
        let ranges = vec![(0.0, 1.0); 3];
        let ab = pairwise_consistency(&a, &b, &ranges);
        let ba = pairwise_consistency(&b, &a, &ranges);
        prop_assert!((ab - ba).abs() < 1e-12, "not symmetric: {} vs {}", ab, ba);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&ab));
    }

    #[test]
    fn self_consistency_is_one(a in boxes_strategy(3)) {
        let ranges = vec![(0.0, 1.0); 3];
        let c = pairwise_consistency(&a, &a, &ranges);
        prop_assert!((c - 1.0).abs() < 1e-9, "self-consistency {}", c);
    }

    #[test]
    fn mean_consistency_within_pair_bounds(
        a in boxes_strategy(2),
        b in boxes_strategy(2),
        c in boxes_strategy(2),
    ) {
        let ranges = vec![(0.0, 1.0); 2];
        let v = consistency(&[a, b, c], &ranges);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&v));
    }

    #[test]
    fn dominance_is_irreflexive_and_asymmetric(
        s in prop::collection::vec(0.0f64..1.0, 3),
        t in prop::collection::vec(0.0f64..1.0, 3),
    ) {
        prop_assert!(!dominates(&s, &s), "a vector cannot dominate itself");
        if dominates(&s, &t) {
            prop_assert!(!dominates(&t, &s), "domination must be asymmetric");
        }
    }

    #[test]
    fn pareto_front_is_nonempty_and_nondominated(
        scores in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 2), 1..12),
    ) {
        let front = pareto_front(&scores);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for (j, other) in scores.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(other, &scores[i]));
                }
            }
        }
    }
}
