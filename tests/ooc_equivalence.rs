//! Acceptance suite of the out-of-core PR: `Reds::discover_out_of_core`
//! produces **bit-identical** boxes to the monolithic `Reds::run` and
//! the streaming `Reds::discover_streaming` — for every metamodel
//! family (forest, GBDT, SVM), both paged algorithms (PRIM and
//! BestInterval), multiple seeds, and pathological page sizes from one
//! record per page up to the whole pool in a single page.
//!
//! Bit-identity means the `f64` bound bits of every box on the
//! trajectory, not approximate equality: the paged column store must
//! serve every scan in the exact order of the in-memory `SortedView`
//! path so that each floating-point summation associates identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::core::{OocConfig, Reds, RedsConfig};
use reds::data::Dataset;
use reds::metamodel::{GbdtParams, RandomForestParams, SvmParams};
use reds::subgroup::{BestInterval, Prim, SdResult, SubgroupDiscovery};
use reds_stream::StreamConfig;

/// Corner concept with some label noise resistance: y = 1 iff the
/// first two inputs clear 0.55.
fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.55 && x[1] > 0.55 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap()
}

fn family(tag: &str, config: RedsConfig) -> Reds {
    match tag {
        "forest" => Reds::random_forest(
            RandomForestParams {
                n_trees: 20,
                ..Default::default()
            },
            config,
        ),
        "gbdt" => Reds::xgboost(
            GbdtParams {
                n_rounds: 15,
                ..Default::default()
            },
            config,
        ),
        "svm" => Reds::svm(SvmParams::default(), config),
        other => panic!("unknown family {other}"),
    }
}

/// The bound bits of every box — the bit-identity witness.
fn bounds_bits(result: &SdResult) -> Vec<(u64, u64)> {
    result
        .boxes
        .iter()
        .flat_map(|b| {
            (0..b.m()).map(|j| {
                let (lo, hi) = b.bound(j);
                (lo.to_bits(), hi.to_bits())
            })
        })
        .collect()
}

/// The full matrix: families × algorithms × seeds × page sizes (1
/// record per page through "everything in one page") × a cache far too
/// small to hold the pool. Every cell must be bit-identical to both
/// the monolithic and the streaming path.
#[test]
fn out_of_core_matches_run_and_streaming_for_every_family_and_page_size() {
    let l = 1_500usize;
    for family_tag in ["forest", "gbdt", "svm"] {
        let d = corner_data(120, 3, 0xA5);
        let reds = family(family_tag, RedsConfig::default().with_l(l));
        for (alg_tag, sd) in [
            ("prim", &Prim::default() as &dyn SubgroupDiscovery),
            ("bi", &BestInterval::default()),
        ] {
            for seed in [3u64, 41] {
                let reference = reds.run(&d, sd, &mut StdRng::seed_from_u64(seed)).unwrap();
                let streamed = reds
                    .discover_streaming(
                        &d,
                        sd,
                        &mut StdRng::seed_from_u64(seed),
                        &StreamConfig::new().with_chunk_rows(173),
                    )
                    .unwrap();
                assert_eq!(
                    bounds_bits(&reference),
                    bounds_bits(&streamed),
                    "{family_tag}/{alg_tag}/seed {seed}: streaming diverges"
                );
                // 1 row/page fragments every scan; 7 and 311 misalign
                // page and chunk boundaries; l and 4·l put the whole
                // pool in a single page.
                for page_rows in [1u32, 7, 311, l as u32, 4 * l as u32] {
                    let ooc = OocConfig::new()
                        .with_page_rows(page_rows)
                        .with_cache_bytes(8 << 10);
                    let paged = reds
                        .discover_out_of_core(
                            &d,
                            sd,
                            &mut StdRng::seed_from_u64(seed),
                            &StreamConfig::new().with_chunk_rows(173),
                            &ooc,
                        )
                        .unwrap();
                    assert_eq!(
                        bounds_bits(&reference),
                        bounds_bits(&paged),
                        "{family_tag}/{alg_tag}/seed {seed}/page_rows {page_rows}: \
                         out-of-core diverges"
                    );
                }
            }
        }
    }
}

/// The out-of-core path leaves the caller's RNG in exactly the state
/// the monolithic path does, so downstream draws stay aligned across
/// modes.
#[test]
fn out_of_core_rng_protocol_matches_run() {
    let d = corner_data(90, 2, 0xB7);
    let reds = family("forest", RedsConfig::default().with_l(600));
    let mut rng_run = StdRng::seed_from_u64(9);
    let mut rng_ooc = StdRng::seed_from_u64(9);
    reds.run(&d, &Prim::default(), &mut rng_run).unwrap();
    reds.discover_out_of_core(
        &d,
        &Prim::default(),
        &mut rng_ooc,
        &StreamConfig::new().with_chunk_rows(97),
        &OocConfig::new(),
    )
    .unwrap();
    assert_eq!(rng_run.gen::<u64>(), rng_ooc.gen::<u64>());
}

/// Probability ("p"-variant) pseudo-labels exercise non-0/1 label sums
/// through the paged label pages; bit-identity must hold there too.
#[test]
fn out_of_core_matches_run_with_probability_labels() {
    let d = corner_data(100, 2, 0xC3);
    let reds = family(
        "forest",
        RedsConfig::default().with_l(800).with_probability_labels(),
    );
    for sd in [
        &Prim::default() as &dyn SubgroupDiscovery,
        &BestInterval::default(),
    ] {
        let reference = reds.run(&d, sd, &mut StdRng::seed_from_u64(5)).unwrap();
        let paged = reds
            .discover_out_of_core(
                &d,
                sd,
                &mut StdRng::seed_from_u64(5),
                &StreamConfig::new().with_chunk_rows(64),
                &OocConfig::new()
                    .with_page_rows(13)
                    .with_cache_bytes(4 << 10),
            )
            .unwrap();
        assert_eq!(
            bounds_bits(&reference),
            bounds_bits(&paged),
            "{}: probability labels diverge out of core",
            sd.name()
        );
    }
}
