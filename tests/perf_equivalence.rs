//! Equivalence oracle for the presorted/parallel hot paths.
//!
//! The `SortedView`-based PRIM, the stable-partition CART builder, the
//! parallel forest, and the tree-major batched predictors must produce
//! **bit-identical** results to the pre-optimization reference
//! implementations (`NaivePrim`, `NaiveTree`, `NaiveRandomForest`,
//! per-point `predict`). These tests sweep
//! more than 20 seeded datasets plus the degenerate shapes that break
//! index bookkeeping: empty data, constant columns, all-ties columns,
//! soft labels, and tie runs straddling the α-quantile.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::core::{Reds, RedsConfig};
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, NaiveRandomForest, NaiveTree, RandomForest, RandomForestParams,
    RegressionTree, Svm, SvmParams, TreeParams,
};
use reds::subgroup::{HyperBox, NaivePrim, PeelCriterion, Prim, PrimParams, SubgroupDiscovery};

/// Bitwise equality of two trajectories (stricter than `==`: `0.0` vs
/// `-0.0` and NaN payloads count as differences).
fn assert_boxes_bits_eq(a: &[HyperBox], b: &[HyperBox], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: trajectory lengths differ");
    for (step, (ba, bb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ba.m(), bb.m(), "{context}: box {step} dimensionality");
        for j in 0..ba.m() {
            let ((la, ha), (lb, hb)) = (ba.bound(j), bb.bound(j));
            assert!(
                la.to_bits() == lb.to_bits() && ha.to_bits() == hb.to_bits(),
                "{context}: box {step} dim {j}: ({la}, {ha}) vs ({lb}, {hb})"
            );
        }
    }
}

/// A randomized dataset family covering hard labels, soft labels,
/// constant columns, and heavy value ties, keyed by `seed`.
fn dataset_for_seed(seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(0xE0_0000 + seed);
    let m = 2 + (seed as usize % 4); // 2..=5 dims
    let n = 150 + (seed as usize % 5) * 60;
    let flavor = seed % 4;
    let points: Vec<f64> = (0..n * m)
        .map(|k| {
            let v: f64 = rng.gen();
            match flavor {
                // Continuous values.
                0 => v,
                // Quantized: many exact ties in every column.
                1 => (v * 6.0).floor() / 6.0,
                // One constant column, rest continuous.
                2 if k % m == 1 => 0.5,
                _ => v,
            }
        })
        .collect();
    let labels: Vec<f64> = points
        .chunks_exact(m)
        .map(|x| {
            if seed % 3 == 2 {
                // Soft labels in [0, 1].
                (x[0] * 0.7 + x[m - 1] * 0.3).clamp(0.0, 1.0)
            } else if x[0] > 0.55 && x[m - 1] > 0.4 {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Dataset::new(points, labels, m).expect("valid shape")
}

#[test]
fn prim_matches_naive_bitwise_across_twenty_plus_seeds() {
    for seed in 0..24u64 {
        let d = dataset_for_seed(seed);
        let params = PrimParams {
            alpha: if seed % 2 == 0 { 0.05 } else { 0.13 },
            min_points: 15,
            criterion: if seed % 5 == 0 {
                PeelCriterion::GainPerPoint
            } else {
                PeelCriterion::MeanLabel
            },
            ..Default::default()
        };
        let fast = Prim::new(params.clone());
        let slow = NaivePrim::new(params);
        // Full untruncated trajectories.
        assert_boxes_bits_eq(
            &fast.peel_trajectory(&d),
            &slow.peel_trajectory(&d),
            &format!("trajectory seed {seed}"),
        );
        // Truncated discover, with the training data as validation.
        let a = fast.discover(&d, &d, &mut StdRng::seed_from_u64(seed));
        let b = slow.discover(&d, &d, &mut StdRng::seed_from_u64(seed));
        assert_boxes_bits_eq(&a.boxes, &b.boxes, &format!("discover seed {seed}"));
        // Distinct validation data exercises the incremental tracker.
        let d_val = dataset_for_seed(seed + 1000);
        if d_val.m() == d.m() {
            let a = fast.discover(&d, &d_val, &mut StdRng::seed_from_u64(seed));
            let b = slow.discover(&d, &d_val, &mut StdRng::seed_from_u64(seed));
            assert_boxes_bits_eq(&a.boxes, &b.boxes, &format!("val seed {seed}"));
        }
    }
}

#[test]
fn prim_edge_cases_match_naive() {
    let mut rng = StdRng::seed_from_u64(1);
    let edge_cases = [
        // Empty dataset.
        Dataset::empty(3).unwrap(),
        // Fewer rows than min_points.
        Dataset::new(vec![0.1, 0.9, 0.4, 0.6], vec![1.0, 0.0], 2).unwrap(),
        // Every column constant: nothing can be peeled.
        Dataset::new(vec![0.5; 80], vec![1.0; 40], 2).unwrap(),
        // All-ties column next to a continuous one.
        Dataset::from_fn(
            (0..200)
                .map(|k| if k % 2 == 0 { 0.25 } else { rng.gen() })
                .collect(),
            2,
            |x| if x[1] > 0.5 { 1.0 } else { 0.0 },
        )
        .unwrap(),
        // Tie run straddling the quantile cut.
        {
            let mut points = vec![0.0; 12];
            points.extend(vec![0.5; 30]);
            points.extend(vec![1.0; 8]);
            let labels = points
                .iter()
                .map(|&v| if v > 0.2 { 1.0 } else { 0.0 })
                .collect();
            Dataset::new(points, labels, 1).unwrap()
        },
    ];
    for (i, d) in edge_cases.iter().enumerate() {
        let a = Prim::default().discover(d, d, &mut StdRng::seed_from_u64(2));
        let b = NaivePrim::default().discover(d, d, &mut StdRng::seed_from_u64(2));
        assert_boxes_bits_eq(&a.boxes, &b.boxes, &format!("edge case {i}"));
    }
}

#[test]
fn tree_builders_match_bitwise_across_seeds() {
    for seed in 0..20u64 {
        let d = dataset_for_seed(seed);
        let (n, m) = (d.n(), d.m());
        let mut boot = StdRng::seed_from_u64(seed ^ 0xB007);
        let indices: Vec<usize> = (0..n).map(|_| boot.gen_range(0..n)).collect();
        let params = TreeParams {
            mtry: if seed % 2 == 0 {
                None
            } else {
                Some(1 + seed as usize % m)
            },
            min_samples_leaf: 1 + seed as usize % 3,
            ..TreeParams::default()
        };
        let fast = RegressionTree::fit(
            d.points(),
            d.labels(),
            m,
            &indices,
            &params,
            &mut StdRng::seed_from_u64(seed),
        );
        let slow = NaiveTree::fit(
            d.points(),
            d.labels(),
            m,
            &indices,
            &params,
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(fast.n_nodes(), slow.n_nodes(), "seed {seed}");
        for i in 0..n {
            let (a, b) = (fast.predict(d.point(i)), slow.predict(d.point(i)));
            assert!(
                a.to_bits() == b.to_bits(),
                "seed {seed} row {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn forest_parallel_fit_and_batch_predict_match_naive() {
    for seed in 0..6u64 {
        let d = dataset_for_seed(seed);
        let params = RandomForestParams {
            n_trees: 30,
            ..Default::default()
        };
        let fast = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(seed));
        let slow = NaiveRandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(seed));
        let query: Vec<f64> = dataset_for_seed(seed + 50)
            .points()
            .iter()
            .copied()
            .take(40 * d.m())
            .collect();
        let batch = fast.predict_batch(&query, d.m());
        for (i, x) in query.chunks_exact(d.m()).enumerate() {
            let (a, b) = (fast.predict(x), slow.predict(x));
            assert!(
                a.to_bits() == b.to_bits(),
                "seed {seed} row {i}: {a} vs {b}"
            );
            assert!(
                a.to_bits() == batch[i].to_bits(),
                "batch seed {seed} row {i}"
            );
        }
    }
}

#[test]
fn gbdt_and_svm_batch_predictions_match_per_point() {
    let d = dataset_for_seed(3);
    let query: Vec<f64> = dataset_for_seed(53)
        .points()
        .iter()
        .copied()
        .take(60 * d.m())
        .collect();

    let gbdt = Gbdt::fit(
        &d,
        &GbdtParams {
            n_rounds: 25,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(4),
    );
    let batch = gbdt.predict_batch(&query, d.m());
    for (i, x) in query.chunks_exact(d.m()).enumerate() {
        assert_eq!(
            gbdt.predict(x).to_bits(),
            batch[i].to_bits(),
            "gbdt row {i}"
        );
    }

    let svm = Svm::fit(&d, &SvmParams::default(), &mut StdRng::seed_from_u64(5));
    let batch = svm.predict_batch(&query, d.m());
    for (i, x) in query.chunks_exact(d.m()).enumerate() {
        assert_eq!(svm.predict(x).to_bits(), batch[i].to_bits(), "svm row {i}");
    }
}

#[test]
fn full_pipeline_matches_naive_subgroup_search() {
    // The REDS pipeline with the optimized PRIM must reproduce the
    // naive-PRIM run exactly: metamodel training, sampling, and
    // pseudo-labeling consume identical RNG streams, and the optimized
    // peel is bit-equivalent.
    let d = dataset_for_seed(7);
    let reds = Reds::random_forest(
        RandomForestParams {
            n_trees: 40,
            ..Default::default()
        },
        RedsConfig::default().with_l(4_000),
    );
    let fast = reds
        .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(8))
        .unwrap();
    let slow = reds
        .run(&d, &NaivePrim::default(), &mut StdRng::seed_from_u64(8))
        .unwrap();
    assert_boxes_bits_eq(&fast.boxes, &slow.boxes, "pipeline");
}

#[test]
fn thread_count_never_changes_results() {
    let d = dataset_for_seed(11);
    let params = RandomForestParams {
        n_trees: 12,
        ..Default::default()
    };
    let query: Vec<f64> = dataset_for_seed(61).points().to_vec();
    let mut reference: Option<Vec<f64>> = None;
    for threads in [1usize, 2, 5] {
        reds_par::set_max_threads(Some(threads));
        let forest = RandomForest::fit(&d, &params, &mut StdRng::seed_from_u64(12));
        let preds = forest.predict_batch(&query[..(query.len() / d.m()) * d.m()], d.m());
        match &reference {
            None => reference = Some(preds),
            Some(r) => assert_eq!(r, &preds, "threads {threads}"),
        }
    }
    reds_par::set_max_threads(None);
}

#[test]
fn forced_scalar_and_dispatched_kernels_are_bit_identical_end_to_end() {
    // The REDS_KERNEL=scalar vs avx2 contract, in-process: forcing the
    // scalar backend must not change a single bit of any model's
    // batched predictions or of a full pipeline run. (On scalar-only
    // hardware dispatch already resolves to scalar and this degenerates
    // to a self-comparison, which keeps the suite portable.)
    use reds::metamodel::kernels;

    let d = dataset_for_seed(5);
    let m = d.m();
    let query: Vec<f64> = dataset_for_seed(55)
        .points()
        .iter()
        .copied()
        .take(101 * m) // odd row count: remainder lanes on every path
        .collect();
    let forest = RandomForest::fit(
        &d,
        &RandomForestParams {
            n_trees: 24,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(6),
    );
    let gbdt = Gbdt::fit(
        &d,
        &GbdtParams {
            n_rounds: 20,
            ..Default::default()
        },
        &mut StdRng::seed_from_u64(7),
    );
    let svm = Svm::fit(&d, &SvmParams::default(), &mut StdRng::seed_from_u64(8));
    let models: [(&str, &dyn Metamodel); 3] = [("forest", &forest), ("gbdt", &gbdt), ("svm", &svm)];

    for (name, model) in models {
        kernels::set_kernel(Some(kernels::Kernel::Scalar));
        let scalar = model.predict_batch(&query, m);
        kernels::set_kernel(None);
        let dispatched = model.predict_batch(&query, m);
        assert_eq!(scalar.len(), dispatched.len(), "{name}");
        for (i, (a, b)) in scalar.iter().zip(&dispatched).enumerate() {
            assert!(
                a.to_bits() == b.to_bits(),
                "{name} row {i}: scalar {a} vs dispatched {b}"
            );
        }
    }

    // Whole pipelines (train → pseudo-label → PRIM) for all three
    // metamodel families: identical boxes. The GBDT and SVM runs push
    // the vectorized `exp` (sigmoid finalization, RBF expansion)
    // through the full discovery loop, not just `predict_batch`.
    let config = || RedsConfig::default().with_l(3_000);
    let pipelines: [(&str, Reds); 3] = [
        (
            "forest",
            Reds::random_forest(
                RandomForestParams {
                    n_trees: 16,
                    ..Default::default()
                },
                config(),
            ),
        ),
        (
            "gbdt",
            Reds::xgboost(
                GbdtParams {
                    n_rounds: 15,
                    ..Default::default()
                },
                config(),
            ),
        ),
        ("svm", Reds::svm(SvmParams::default(), config())),
    ];
    for (name, reds) in &pipelines {
        kernels::set_kernel(Some(kernels::Kernel::Scalar));
        let scalar_run = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(9))
            .unwrap();
        kernels::set_kernel(None);
        let dispatched_run = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(9))
            .unwrap();
        assert_boxes_bits_eq(
            &scalar_run.boxes,
            &dispatched_run.boxes,
            &format!("{name} kernel pipeline"),
        );
    }
}

#[test]
fn exp_backends_agree_everywhere_poly_is_within_contract() {
    // The polynomial and libm exp are different functions (that is the
    // point of the REDS_EXP escape hatch), but they must stay within
    // the documented 2-ULP envelope on the RBF/sigmoid operating range
    // and agree exactly on special values. Explicit-backend entry
    // points only — no global state, safe under the parallel harness.
    use reds::metamodel::kernels::{self, ExpBackend, Kernel};

    let mut xs: Vec<f64> = (-7400..=7090).map(|k| k as f64 * 0.1).collect();
    xs.extend([
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        kernels::vexp::EXP_OVERFLOW,
        kernels::vexp::EXP_UNDERFLOW,
        f64::MIN_POSITIVE / 2.0,
    ]);
    let mut poly = xs.clone();
    kernels::exp_in_place(Kernel::Scalar, ExpBackend::Poly, &mut poly);
    let mut libm = xs.clone();
    kernels::exp_in_place(Kernel::Scalar, ExpBackend::Libm, &mut libm);
    for ((&x, &p), &l) in xs.iter().zip(&poly).zip(&libm) {
        let ulp = p.to_bits().abs_diff(l.to_bits());
        assert!(
            ulp <= 2,
            "exp({x}): poly {p:e} is {ulp} ULP from libm {l:e}"
        );
        if !x.is_finite() || x == 0.0 {
            assert_eq!(p.to_bits(), l.to_bits(), "special value exp({x})");
        }
    }
}
