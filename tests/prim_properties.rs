//! Property-based tests of the subgroup-discovery invariants, spanning
//! `reds-subgroup`, `reds-data`, and `reds-metrics`.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::data::Dataset;
use reds::metrics::{precision, recall};
use reds::subgroup::{
    BestInterval, BiParams, HyperBox, Prim, PrimBumping, PrimBumpingParams, PrimParams,
    SubgroupDiscovery,
};

/// Arbitrary small dataset: n points in [0,1]^m with random hard labels.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..5, 40usize..120).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec(0.0f64..1.0, n * m),
            prop::collection::vec(prop::bool::ANY, n),
            Just(m),
        )
            .prop_map(|(points, labels, m)| {
                let labels = labels
                    .into_iter()
                    .map(|b| if b { 1.0 } else { 0.0 })
                    .collect();
                Dataset::new(points, labels, m).expect("valid shape")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prim_trajectory_is_nested_and_anchored(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(1);
        let result = Prim::default().discover(&d, &d, &mut rng);
        prop_assert!(!result.boxes.is_empty());
        prop_assert_eq!(result.boxes[0].clone(), HyperBox::unbounded(d.m()));
        for w in result.boxes.windows(2) {
            for j in 0..d.m() {
                prop_assert!(w[1].bound(j).0 >= w[0].bound(j).0);
                prop_assert!(w[1].bound(j).1 <= w[0].bound(j).1);
            }
        }
    }

    #[test]
    fn prim_recall_never_increases_along_trajectory(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(2);
        let result = Prim::default().discover(&d, &d, &mut rng);
        let recalls: Vec<f64> = result.boxes.iter().map(|b| recall(b, &d)).collect();
        for w in recalls.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12, "recall increased: {:?}", recalls);
        }
    }

    #[test]
    fn prim_last_box_precision_beats_base_rate(d in dataset_strategy()) {
        // The chosen box maximises validation precision, so it can never
        // be worse than the unrestricted box (= base rate).
        let mut rng = StdRng::seed_from_u64(3);
        let result = Prim::default().discover(&d, &d, &mut rng);
        let last = result.last_box().expect("non-empty");
        prop_assert!(precision(last, &d) >= d.pos_rate() - 1e-12);
    }

    #[test]
    fn prim_smaller_alpha_peels_more_patiently(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(4);
        let fine = Prim::new(PrimParams { alpha: 0.03, ..Default::default() });
        let coarse = Prim::new(PrimParams { alpha: 0.2, ..Default::default() });
        let fine_steps = fine.peel_trajectory(&d).len();
        let coarse_steps = coarse.peel_trajectory(&d).len();
        let _ = &mut rng;
        // Patient peeling takes at least as many steps as aggressive peeling.
        prop_assert!(fine_steps >= coarse_steps);
    }

    #[test]
    fn bumping_boxes_are_mutually_nondominated(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(5);
        let pb = PrimBumping::new(PrimBumpingParams { q: 6, ..Default::default() });
        let result = pb.discover(&d, &d, &mut rng);
        let scores: Vec<(f64, f64)> = result
            .boxes
            .iter()
            .map(|b| (precision(b, &d), recall(b, &d)))
            .collect();
        for (i, &(p1, r1)) in scores.iter().enumerate() {
            for (j, &(p2, r2)) in scores.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !(p2 >= p1 && r2 >= r1 && (p2 > p1 || r2 > r1)),
                        "box {} dominated by {}", i, j
                    );
                }
            }
        }
    }

    #[test]
    fn bi_wracc_is_nonnegative(d in dataset_strategy()) {
        // BI starts from the unrestricted box (WRAcc 0) and only accepts
        // refinements with higher WRAcc.
        let mut rng = StdRng::seed_from_u64(6);
        let result = BestInterval::default().discover(&d, &d, &mut rng);
        let b = result.last_box().expect("BI returns a box");
        prop_assert!(reds::metrics::wracc(b, &d) >= -1e-12);
    }

    #[test]
    fn bi_depth_limit_is_respected(d in dataset_strategy()) {
        let mut rng = StdRng::seed_from_u64(7);
        let limit = 1;
        let bi = BestInterval::new(BiParams {
            max_restricted: Some(limit),
            ..Default::default()
        });
        let result = bi.discover(&d, &d, &mut rng);
        prop_assert!(result.boxes[0].n_restricted() <= limit);
    }
}
