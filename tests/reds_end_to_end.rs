//! End-to-end integration tests spanning every crate: benchmark
//! functions → sampling → REDS (metamodel + pseudo-labeling) → subgroup
//! discovery → metrics → experiment harness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::core::{NewPointSampler, Reds, RedsConfig};
use reds::eval::{run_experiment, run_method, ExperimentSpec, MethodOpts};
use reds::functions::by_name;
use reds::metamodel::{GbdtParams, RandomForestParams};
use reds::metrics::{pr_auc, precision, recall};
use reds::sampling::latin_hypercube;
use reds::subgroup::{covering, Prim, SubgroupDiscovery};

fn fast_opts() -> MethodOpts {
    MethodOpts {
        l_prim: 4_000,
        l_bi: 3_000,
        bumping_q: 8,
        ..Default::default()
    }
}

#[test]
fn reds_improves_over_prim_on_the_dalal_corner() {
    // Function "2" is an axis-aligned noisy corner (the friendliest case
    // for boxes): with few simulations REDS should beat plain PRIM on
    // PR AUC, the paper's primary claim.
    let f = by_name("2").expect("registry");
    let mut spec = ExperimentSpec::new(f, 150, &["P", "RPx"]);
    spec.reps = 6;
    spec.test_size = 6_000;
    spec.opts = fast_opts();
    let summaries = run_experiment(&spec);
    let p = &summaries[0];
    let rpx = &summaries[1];
    assert!(
        rpx.pr_auc > p.pr_auc,
        "RPx ({:.1}) should beat P ({:.1}) on PR AUC",
        rpx.pr_auc,
        p.pr_auc
    );
    assert!(
        rpx.precision >= p.precision - 2.0,
        "RPx precision {:.1} vs P {:.1}",
        rpx.precision,
        p.precision
    );
}

#[test]
fn reds_box_respects_active_inputs_on_easy_data() {
    // On the 5-input function "2" only inputs 0 and 1 matter; REDS's
    // final box should rarely restrict the inert ones.
    let f = by_name("2").expect("registry");
    let mut spec = ExperimentSpec::new(f, 200, &["RPx"]);
    spec.reps = 5;
    spec.test_size = 4_000;
    spec.opts = fast_opts();
    let summaries = run_experiment(&spec);
    // The paper's Table 3e averages ≈ 0.1 over 33 functions, many of
    // which have no inert inputs at all; on this single noisy 2-of-5
    // function a small positive rate is expected — but it must stay far
    // below the ~2.5 of unoptimised plain PRIM.
    assert!(
        summaries[0].n_irrel <= 1.5,
        "mean irrelevant restrictions {:.2} too high",
        summaries[0].n_irrel
    );
}

#[test]
fn every_paper_method_runs_on_a_real_function() {
    let f = by_name("willetal06").expect("registry");
    let mut rng = StdRng::seed_from_u64(1);
    let design = latin_hypercube(120, f.m(), &mut rng);
    let d = f.label_dataset(design, &mut rng).expect("consistent shape");
    for name in [
        "P", "Pc", "PB", "PBc", "RPf", "RPx", "RPs", "RPxp", "RPfp", "RPcxp", "BI", "BI5", "BIc",
        "RBIcfp", "RBIcxp",
    ] {
        let mut method_rng = StdRng::seed_from_u64(2);
        let result = run_method(name, &d, &fast_opts(), &mut method_rng)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(!result.boxes.is_empty(), "{name} returned nothing");
        for b in &result.boxes {
            assert_eq!(b.m(), f.m(), "{name} box dimensionality");
        }
    }
}

#[test]
fn semi_supervised_entry_point_uses_the_pool_distribution() {
    let f = by_name("hart3").expect("registry");
    let mut rng = StdRng::seed_from_u64(3);
    let design = latin_hypercube(150, f.m(), &mut rng);
    let d = f.label_dataset(design, &mut rng).expect("consistent shape");
    let pool = reds::sampling::uniform(5_000, f.m(), &mut rng);
    let reds = Reds::random_forest(
        RandomForestParams {
            n_trees: 60,
            ..Default::default()
        },
        RedsConfig::default(),
    );
    let result = reds
        .run_on_pool(&d, &pool, &Prim::default(), &mut rng)
        .expect("pool run succeeds");
    let test_points = reds::sampling::uniform(5_000, f.m(), &mut rng);
    let test = f
        .label_dataset(test_points, &mut rng)
        .expect("consistent shape");
    let auc = pr_auc(&result.boxes, &test);
    assert!(auc > 0.5, "semi-supervised PR AUC {auc:.2} too low");
}

#[test]
fn covering_finds_distinct_scenarios_after_reds() {
    // Pseudo-label with REDS once, then use the covering approach to
    // extract two scenarios from the two-box function "6".
    let f = by_name("6").expect("registry");
    let mut rng = StdRng::seed_from_u64(4);
    let design = latin_hypercube(400, f.m(), &mut rng);
    let d = f.label_dataset(design, &mut rng).expect("consistent shape");
    let reds = Reds::xgboost(
        GbdtParams {
            n_rounds: 60,
            ..Default::default()
        },
        RedsConfig::default()
            .with_l(8_000)
            .with_sampler(NewPointSampler::Uniform),
    );
    let model = reds
        .train_metamodel(&d, &mut rng)
        .expect("training succeeds");
    let pool = reds::sampling::uniform(8_000, f.m(), &mut rng);
    let d_new =
        reds::data::Dataset::from_fn(
            pool,
            f.m(),
            |x| {
                if model.predict(x) > 0.5 {
                    1.0
                } else {
                    0.0
                }
            },
        )
        .expect("consistent shape");
    let prim = Prim::default();
    let results = covering(&prim, &d_new, &d_new, 2, &mut rng);
    assert!(!results.is_empty());
    // The first two discovered boxes must be essentially disjoint.
    if results.len() == 2 {
        let b1 = results[0].last_box().expect("non-empty");
        let b2 = results[1].last_box().expect("non-empty");
        let c1 = b1.contains(&[0.05, 0.05, 0.5, 0.5, 0.5]);
        let c2 = b2.contains(&[0.05, 0.05, 0.5, 0.5, 0.5]);
        let d1 = b1.contains(&[0.95, 0.95, 0.5, 0.5, 0.5]);
        let d2 = b2.contains(&[0.95, 0.95, 0.5, 0.5, 0.5]);
        assert_ne!((c1, d1), (c2, d2), "covering found the same region twice");
    }
}

#[test]
fn trajectory_quality_is_consistent_between_metrics_and_subgroup_crates() {
    let f = by_name("borehole").expect("registry");
    let mut rng = StdRng::seed_from_u64(5);
    let design = latin_hypercube(300, f.m(), &mut rng);
    let d = f.label_dataset(design, &mut rng).expect("consistent shape");
    let result = Prim::default().discover(&d, &d, &mut rng);
    let last = result.last_box().expect("non-empty");
    // The final box must be at least as precise as the base rate on its
    // own training data and have sane recall.
    assert!(precision(last, &d) >= d.pos_rate());
    assert!((0.0..=1.0).contains(&recall(last, &d)));
}

#[test]
fn experiment_driver_matches_direct_method_runs() {
    // The harness must not distort method outputs: a single-method,
    // single-rep experiment equals a direct run with the same seeds.
    let f = by_name("ishigami").expect("registry");
    let mut spec = ExperimentSpec::new(f, 100, &["P"]);
    spec.reps = 2;
    spec.test_size = 2_000;
    spec.opts = fast_opts();
    let a = run_experiment(&spec);
    let b = run_experiment(&spec);
    assert_eq!(a[0].pr_auc, b[0].pr_auc);
    assert_eq!(a[0].consistency, b[0].consistency);
}
