//! Property-based tests of the sampling designs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use reds::sampling::{
    halton, latin_hypercube, logit_normal, mixed_design, sobol, uniform, DISCRETE_LEVELS,
    SOBOL_MAX_DIM,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lhs_is_stratified_for_any_size(n in 1usize..200, m in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = latin_hypercube(n, m, &mut rng);
        prop_assert_eq!(pts.len(), n * m);
        for j in 0..m {
            let mut seen = vec![false; n];
            for i in 0..n {
                let stratum = ((pts[i * m + j] * n as f64) as usize).min(n - 1);
                prop_assert!(!seen[stratum], "stratum {} reused", stratum);
                seen[stratum] = true;
            }
        }
    }

    #[test]
    fn halton_values_in_unit_interval(n in 1usize..500, m in 1usize..20) {
        let pts = halton(n, m);
        prop_assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn sobol_values_in_unit_interval(n in 1usize..500, m in 1usize..=SOBOL_MAX_DIM) {
        let pts = sobol(n, m);
        prop_assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn uniform_shape_and_range(n in 0usize..100, m in 1usize..6, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = uniform(n, m, &mut rng);
        prop_assert_eq!(pts.len(), n * m);
        prop_assert!(pts.iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn logit_normal_in_open_interval(
        n in 1usize..200,
        mu in -2.0f64..2.0,
        sigma in 0.1f64..3.0,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = logit_normal(n, 2, mu, sigma, &mut rng);
        prop_assert!(pts.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    fn mixed_design_snaps_even_columns(n in 1usize..100, m in 1usize..7, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts = mixed_design(n, m, &mut rng);
        for row in pts.chunks_exact(m) {
            for j in (0..m).step_by(2) {
                prop_assert!(
                    DISCRETE_LEVELS.iter().any(|&l| (row[j] - l).abs() < 1e-12),
                    "even column value {} off the grid", row[j]
                );
            }
        }
    }

    #[test]
    fn halton_is_deterministic(n in 1usize..100, m in 1usize..10) {
        prop_assert_eq!(halton(n, m), halton(n, m));
    }
}
