//! End-to-end tests of the serving layer over a real TCP socket.
//!
//! The acceptance bar of the serving PR: a saved metamodel round-trips
//! through `reds-json` with bit-identical `predict_batch` output, and
//! N concurrent socket clients receive answers identical to in-process
//! calls — plus the hardening behaviours at the trust boundary
//! (malformed frames, oversized frames, invalid points, clean shutdown
//! mid-stream).

use std::sync::mpsc;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::data::Dataset;
use reds::metamodel::{Metamodel, RandomForest, RandomForestParams, SavedModel};
use reds_json::Json;
use reds_serve::{
    run_discover, serve, Algorithm, Client, ClientError, DiscoverParams, ModelArtifact,
    ServeLimits, ServerHandle, StreamDiscoverParams,
};

fn corner_artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = Dataset::from_fn((0..150 * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
        if x[0] > 0.55 && x[1] > 0.55 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap();
    let params = RandomForestParams {
        n_trees: 20,
        ..Default::default()
    };
    let model = RandomForest::fit(&train, &params, &mut rng);
    ModelArtifact {
        function: "corner".to_string(),
        seed,
        pool_seed: seed.wrapping_add(9_000),
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: SavedModel::Forest(model).into(),
        train,
    }
}

/// Saves the artifact, loads it back, and serves the **loaded** copy —
/// so every socket test doubles as a save→load→serve determinism test
/// against the in-process original.
fn spawn_served_copy(artifact: &ModelArtifact, limits: ServeLimits) -> ServerHandle {
    let dir = std::env::temp_dir().join(format!(
        "reds-serve-test-{}-{:x}",
        std::process::id(),
        artifact.seed
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    artifact.save(&path).expect("artifact saves");
    let loaded = ModelArtifact::load(&path).expect("artifact loads");
    std::fs::remove_dir_all(&dir).ok();
    serve(loaded, "127.0.0.1:0", limits).expect("server binds")
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {i}: {x} vs {y}");
    }
}

#[test]
fn concurrent_clients_get_answers_identical_to_in_process_calls() {
    let artifact = corner_artifact(1);
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let addr = handle.addr();

    const CLIENTS: usize = 8;
    const REQUESTS: usize = 5;
    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        threads.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connects");
            let mut out = Vec::new();
            for r in 0..REQUESTS {
                // Varying batch sizes so the micro-batcher sees ragged
                // concurrent loads.
                let rows = 1 + (c * REQUESTS + r) % 7;
                let query: Vec<f64> = (0..rows * 2)
                    .map(|i| ((i * 13 + c * 7 + r * 3) % 29) as f64 / 29.0)
                    .collect();
                let preds = client.predict_batch(&query, 2).expect("prediction served");
                out.push((query, preds));
            }
            out
        }));
    }
    for t in threads {
        for (query, served) in t.join().expect("client thread") {
            let direct = artifact.model.predict_batch(&query, 2);
            assert_bits_eq(&served, &direct, "socket vs in-process");
        }
    }

    // The server coalesced at least some of the concurrent requests.
    let mut client = Client::connect(addr).expect("connects");
    let info = client.info().expect("info");
    let requests = info.get("requests").and_then(Json::as_f64).unwrap();
    let batches = info.get("batches").and_then(Json::as_f64).unwrap();
    assert_eq!(requests as usize, CLIENTS * REQUESTS);
    assert!(batches >= 1.0 && batches <= requests);
    // Operational visibility: the resolved kernel and exp backends are
    // reported so a fleet operator can audit what a shard runs.
    for (field, expected) in [
        ("kernel", reds::metamodel::kernels::active().name()),
        ("exp", reds::metamodel::kernels::vexp::backend().name()),
    ] {
        assert_eq!(
            info.get(field).and_then(Json::as_str),
            Some(expected),
            "info field '{field}'"
        );
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn discover_over_the_socket_matches_the_in_process_run() {
    let artifact = corner_artifact(2);
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let mut client = Client::connect(handle.addr()).expect("connects");

    for algorithm in [Algorithm::Prim, Algorithm::BestInterval] {
        let params = DiscoverParams {
            l: 2_000,
            seed: 11,
            algorithm,
            bnd: 0.5,
        };
        let served = client.discover(&params).expect("discover served");
        let direct = run_discover(
            |pts| Ok(artifact.model.predict_batch(&pts, 2)),
            2,
            &artifact.train,
            &params,
        )
        .expect("in-process discover");
        assert_eq!(served, direct, "{algorithm:?}");
        assert!(!served.boxes.is_empty());
        // Same seed, same boxes: the served path is deterministic.
        let again = client.discover(&params).expect("repeat discover");
        assert_eq!(again, served);
    }

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn discover_streaming_over_the_socket_matches_the_monolithic_discover() {
    let artifact = corner_artifact(6);
    let pool_seed = artifact.pool_seed;
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let mut client = Client::connect(handle.addr()).expect("connects");

    for algorithm in [Algorithm::Prim, Algorithm::BestInterval] {
        // Streaming with an explicit seed ≡ monolithic discover with
        // the same seed, for any chunking.
        let monolithic = client
            .discover(&DiscoverParams {
                l: 2_000,
                seed: 17,
                algorithm,
                bnd: 0.5,
            })
            .expect("monolithic served discover");
        for chunk_rows in [0usize, 311] {
            let streamed = client
                .discover_streaming(&StreamDiscoverParams {
                    l: 2_000,
                    seed: Some(17),
                    algorithm,
                    bnd: 0.5,
                    chunk_rows,
                    ooc: false,
                })
                .expect("streamed served discover");
            assert_eq!(streamed, monolithic, "{algorithm:?} chunk {chunk_rows}");
        }
        // The out-of-core path (pool spilled to a scratch .redsart
        // artifact, search paging it back in) serves the same bits.
        let ooc = client
            .discover_streaming(&StreamDiscoverParams {
                l: 2_000,
                seed: Some(17),
                algorithm,
                bnd: 0.5,
                chunk_rows: 0,
                ooc: true,
            })
            .expect("out-of-core served discover");
        assert_eq!(ooc, monolithic, "{algorithm:?} out-of-core");
    }

    // Seedless streaming serves the artifact's recorded pool — equal to
    // an explicit request for that seed, so the run is reproducible
    // from the artifact file alone.
    let from_artifact = client
        .discover_streaming(&StreamDiscoverParams {
            l: 1_500,
            seed: None,
            ..Default::default()
        })
        .expect("artifact-pool discover");
    let explicit = client
        .discover_streaming(&StreamDiscoverParams {
            l: 1_500,
            seed: Some(pool_seed),
            ..Default::default()
        })
        .expect("explicit-pool discover");
    assert_eq!(from_artifact, explicit);

    client.shutdown().expect("shutdown");
    handle.join();
}

/// Regression: a raw frame carrying an explicit `"chunk_rows": 0` must
/// be rejected with a structured `bad_request` at the wire boundary —
/// not silently substituted with the server default — and the
/// connection must keep serving. Absurdly large chunks are rejected
/// the same way at the service level.
#[test]
fn explicit_zero_chunk_rows_is_rejected_over_the_socket() {
    let artifact = corner_artifact(7);
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let mut client = Client::connect(handle.addr()).expect("connects");

    let resp = client
        .send_raw_line(r#"{"id":1,"cmd":"discover_streaming","l":500,"chunk_rows":0}"#)
        .expect("error response arrives");
    assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{resp}"
    );
    let message = resp
        .get("error")
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .expect("error message");
    assert!(message.contains("chunk_rows"), "{message}");
    assert!(message.contains("omit"), "{message}");

    // A chunk beyond the largest admissible pool can never take effect.
    let huge = format!(
        r#"{{"id":2,"cmd":"discover_streaming","l":500,"chunk_rows":{}}}"#,
        ServeLimits::default().max_discover_l + 1
    );
    let resp = client.send_raw_line(&huge).expect("error response arrives");
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("bad_request"),
        "{resp}"
    );

    // The connection survives both rejections, and omitting the field
    // (the documented way to ask for the server default) still serves.
    let served = client
        .discover_streaming(&StreamDiscoverParams {
            l: 500,
            seed: Some(3),
            ..Default::default()
        })
        .expect("default chunking still serves");
    assert!(!served.boxes.is_empty());

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn malformed_and_invalid_frames_get_structured_errors_and_the_connection_survives() {
    let artifact = corner_artifact(3);
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let mut client = Client::connect(handle.addr()).expect("connects");

    let cases: [(&str, &str); 7] = [
        ("this is not json", "parse"),
        (r#"{"id":1,"cmd":"frobnicate"}"#, "parse"),
        // len % m != 0.
        (
            r#"{"id":2,"cmd":"predict_batch","m":2,"points":[1,2,3]}"#,
            "bad_request",
        ),
        // Declared width disagrees with the model.
        (
            r#"{"id":3,"cmd":"predict_batch","m":4,"points":[1,2,3,4]}"#,
            "bad_request",
        ),
        // NaN cannot be a JSON number; a null in its place is a
        // structural error…
        (
            r#"{"id":4,"cmd":"predict_batch","m":2,"points":[0.5,null]}"#,
            "parse",
        ),
        // …while the "nan" marker decodes to a real NaN and is
        // rejected at the boundary with its position.
        (
            r#"{"id":5,"cmd":"predict_batch","m":2,"points":[0.5,0.5,0.5,"nan"]}"#,
            "bad_request",
        ),
        (r#"{"id":6,"cmd":"discover","l":0}"#, "bad_request"),
    ];
    for (line, code) in cases {
        let resp = client.send_raw_line(line).expect("error response arrives");
        assert_eq!(
            resp.get("ok").and_then(Json::as_bool),
            Some(false),
            "{line}"
        );
        assert_eq!(
            resp.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Json::as_str),
            Some(code),
            "{line} → {resp}"
        );
    }

    // A typed client sending a NaN point gets the structured boundary
    // error, with the offending row and column named.
    match client.predict_batch(&[0.5, f64::NAN], 2) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("row 0"), "{message}");
            assert!(message.contains("column 1"), "{message}");
        }
        other => panic!("expected a structured NaN rejection, got {other:?}"),
    }

    // Infinite coordinates are legal in-process, so they must be legal
    // over the wire too — and answered identically.
    let inf_query = [f64::NEG_INFINITY, 0.9, f64::INFINITY, 0.9];
    let served = client
        .predict_batch(&inf_query, 2)
        .expect("infinities serve");
    assert_bits_eq(
        &served,
        &artifact.model.predict_batch(&inf_query, 2),
        "infinite coordinates",
    );

    // The connection is still usable after every rejected frame.
    let preds = client.predict_batch(&[0.9, 0.9], 2).expect("still serving");
    assert_bits_eq(
        &preds,
        &artifact.model.predict_batch(&[0.9, 0.9], 2),
        "post-error request",
    );

    client.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn oversized_frames_are_answered_then_the_connection_closes() {
    let artifact = corner_artifact(4);
    let limits = ServeLimits {
        max_frame_bytes: 4_096,
        ..Default::default()
    };
    let handle = spawn_served_copy(&artifact, limits);
    let mut client = Client::connect(handle.addr()).expect("connects");

    let huge = format!(
        r#"{{"id":9,"cmd":"predict_batch","m":2,"points":[{}]}}"#,
        vec!["0.5"; 4_000].join(",")
    );
    assert!(huge.len() > 4_096);
    let resp = client.send_raw_line(&huge).expect("too_large response");
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("too_large")
    );
    // The over-long line cannot be resynchronized; the server closes
    // this connection…
    match client.send_raw_line(r#"{"id":10,"cmd":"info"}"#) {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        other => panic!("expected a closed connection, got {other:?}"),
    }
    // …but keeps accepting new ones.
    let mut fresh = Client::connect(handle.addr()).expect("reconnects");
    fresh.info().expect("fresh connection serves");

    fresh.shutdown().expect("shutdown");
    handle.join();
}

#[test]
fn shutdown_mid_stream_stops_the_server_cleanly() {
    let artifact = corner_artifact(5);
    let handle = spawn_served_copy(&artifact, ServeLimits::default());
    let addr = handle.addr();

    // A streaming client mid-conversation…
    let mut streaming = Client::connect(addr).expect("connects");
    streaming
        .predict_batch(&[0.2, 0.8], 2)
        .expect("first request");

    // …while a second client shuts the server down.
    let mut controller = Client::connect(addr).expect("connects");
    controller.shutdown().expect("shutdown acknowledged");

    // The accept loop and every connection thread must wind down —
    // watchdogged so a regression hangs the test for 10 s, not forever.
    let (done_tx, done_rx) = mpsc::channel();
    std::thread::spawn(move || {
        handle.join();
        let _ = done_tx.send(());
    });
    done_rx
        .recv_timeout(Duration::from_secs(10))
        .expect("server shut down within the deadline");

    // The streaming client's next request fails (connection closed)
    // instead of hanging.
    let outcome = streaming.predict_batch(&[0.3, 0.3], 2);
    assert!(outcome.is_err(), "server kept serving after shutdown");

    // New connections are refused or immediately closed.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            c.set_timeout(Some(Duration::from_secs(2))).unwrap();
            assert!(c.info().is_err(), "server accepted work after shutdown");
        }
    }
}

#[test]
fn saved_model_round_trip_is_bit_identical_for_every_family() {
    use reds::metamodel::{Gbdt, GbdtParams, Svm, SvmParams};
    let mut rng = StdRng::seed_from_u64(6);
    let train = Dataset::from_fn((0..200 * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
        if x[0] > 0.3 && x[1] < 0.8 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap();
    let models = [
        SavedModel::Forest(RandomForest::fit(
            &train,
            &RandomForestParams {
                n_trees: 15,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(7),
        )),
        SavedModel::Gbdt(Gbdt::fit(
            &train,
            &GbdtParams {
                n_rounds: 20,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(8),
        )),
        SavedModel::Svm(Svm::fit(
            &train,
            &SvmParams::default(),
            &mut StdRng::seed_from_u64(9),
        )),
    ];
    let query: Vec<f64> = (0..123 * 3)
        .map(|i| ((i * 17) % 31) as f64 / 31.0)
        .collect();
    for model in models {
        let text = model.to_json().to_string_compact();
        let loaded =
            SavedModel::from_json(&reds_json::from_str(&text).expect("parses")).expect("decodes");
        assert_bits_eq(
            &model.predict_batch(&query, 3),
            &loaded.predict_batch(&query, 3),
            model.family(),
        );
    }
}

/// Admission control: with the connection cap at 1, a second client is
/// turned away with a structured `too_busy` error instead of hanging,
/// and a slot freed by a disconnect is reusable.
#[test]
fn connections_beyond_the_cap_get_too_busy_and_slots_are_reclaimed() {
    let artifact = corner_artifact(0xADA);
    let limits = ServeLimits {
        max_connections: 1,
        ..Default::default()
    };
    let server = spawn_served_copy(&artifact, limits);
    let addr = server.addr();

    let mut admitted = Client::connect(addr).expect("first client connects");
    admitted.info().expect("admitted client is served");

    // The cap is enforced at accept time: the rejected client still
    // gets a parseable error frame before the socket closes.
    let mut rejected = Client::connect(addr).expect("TCP connect still succeeds");
    match rejected.info() {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, "too_busy");
            assert!(
                message.contains("limit of 1"),
                "message names the cap: {message}"
            );
        }
        other => panic!("expected a too_busy error, got {other:?}"),
    }
    let info = admitted.info().expect("info after rejection");
    assert_eq!(
        info.get("rejected_connections").and_then(Json::as_f64),
        Some(1.0),
        "the rejection is counted: {info:?}"
    );
    assert_eq!(
        info.get("active_connections").and_then(Json::as_f64),
        Some(1.0),
        "only the admitted client holds a slot"
    );

    // Freeing the slot re-admits new clients (the gauge decrement runs
    // after the handler exits, so poll briefly).
    drop(admitted);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let mut retry = Client::connect(addr).expect("reconnect");
        match retry.info() {
            Ok(_) => break,
            Err(ClientError::Server { ref code, .. }) if code == "too_busy" => {
                assert!(
                    std::time::Instant::now() < deadline,
                    "slot was never reclaimed"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(other) => panic!("unexpected error while re-admitting: {other}"),
        }
    }
    server.shutdown();
}

/// A server that accepts and then never answers must not hang the
/// client: the bounded read budget surfaces a structured timeout.
#[test]
fn silent_servers_trip_the_client_read_timeout() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mute = std::thread::spawn(move || {
        // Accept, read the request, reply with nothing, keep the
        // socket open past the client's patience.
        let Ok((stream, _)) = listener.accept() else {
            return;
        };
        std::thread::sleep(Duration::from_secs(4));
        drop(stream);
    });

    let mut client = Client::connect(addr).expect("connect");
    client
        .set_timeout(Some(Duration::from_millis(600)))
        .expect("set timeout");
    let started = std::time::Instant::now();
    match client.info() {
        Err(ClientError::Timeout { after }) => {
            assert_eq!(after, Duration::from_millis(600));
            assert!(
                started.elapsed() < Duration::from_secs(3),
                "client must give up near its budget, not hang"
            );
        }
        other => panic!("expected a timeout, got {other:?}"),
    }
    mute.join().expect("mute server thread");
}
