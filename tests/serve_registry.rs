//! Hot-swap registry tests: the proof obligations of the versioned
//! serving fleet.
//!
//! * **Hammer.** Threads predict continuously while versions flip
//!   underneath them: zero dropped requests, zero mixed-version
//!   batches, versions observed in monotonic order — in-process and
//!   over a real socket.
//! * **Drain-before-unmap.** An old version stays alive exactly as
//!   long as some request holds it pinned, observed through a `Weak`
//!   handle; the swap reports whether the drain window sufficed.
//! * **Monotonicity.** Property test: any interleaving of swaps,
//!   predictions, and reads yields strictly increasing installed
//!   versions and non-decreasing served versions.
//! * **Isolation.** A wedged, backlogged model rejects with `too_busy`
//!   while its neighbours keep serving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::data::Dataset;
use reds::metamodel::{Metamodel, RandomForest, RandomForestParams, SavedModel};
use reds_json::Json;
use reds_serve::registry::{ModelVersion, PredictShim};
use reds_serve::{serve, Client, ModelArtifact, ModelRegistry, ServeLimits};

fn corner_artifact(seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = Dataset::from_fn((0..120 * 2).map(|_| rng.gen::<f64>()).collect(), 2, |x| {
        if x[0] > 0.55 && x[1] > 0.55 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap();
    let params = RandomForestParams {
        n_trees: 12,
        ..Default::default()
    };
    let model = RandomForest::fit(&train, &params, &mut rng);
    ModelArtifact {
        function: "corner".to_string(),
        seed,
        pool_seed: seed.wrapping_add(9_000),
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: SavedModel::Forest(model).into(),
        train,
    }
}

/// A shim version whose every prediction is the version number itself —
/// any mixed-version batch becomes immediately visible in the output.
fn tagged_version(version: u64) -> Arc<ModelVersion> {
    let shim: PredictShim = Box::new(move |points, m| Some(vec![version as f64; points.len() / m]));
    Arc::new(ModelVersion::with_shim(
        version,
        corner_artifact(1_000 + version),
        shim,
    ))
}

#[test]
fn hot_swap_hammer_drops_nothing_and_never_mixes_versions() {
    const SWAPS: u64 = 20;
    const THREADS: usize = 4;
    let limits = ServeLimits::default();
    let registry = ModelRegistry::new(corner_artifact(11), &limits);
    let entry = registry.get(None).expect("default model");
    let stop = Arc::new(AtomicBool::new(false));

    let hammers: Vec<_> = (0..THREADS)
        .map(|_| {
            let entry = Arc::clone(&entry);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut served = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let rows = 1 + served % 5;
                    let (version, preds) = entry
                        .predict(vec![0.25; rows * 2])
                        .expect("no request may be dropped during a swap");
                    assert_eq!(preds.len(), rows);
                    assert!(
                        version >= last,
                        "served version went backwards: {version} after {last}"
                    );
                    // Versions ≥ 2 are tagged shims: every prediction
                    // equals the version, so one stray row from another
                    // version would fail here.
                    if version >= 2 {
                        for p in &preds {
                            assert_eq!(
                                p.to_bits(),
                                (version as f64).to_bits(),
                                "mixed-version batch at version {version}"
                            );
                        }
                    }
                    last = version;
                    served += 1;
                }
                served
            })
        })
        .collect();

    for version in 2..=SWAPS + 1 {
        let outcome = entry.install_version(tagged_version(version), Duration::from_secs(5));
        assert_eq!(outcome.version, version);
        assert_eq!(outcome.previous, version - 1);
        assert!(
            outcome.drained,
            "version {} still pinned after the drain window",
            version - 1
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    stop.store(true, Ordering::Relaxed);
    let total: usize = hammers.into_iter().map(|t| t.join().expect("hammer")).sum();
    assert!(total > 0, "hammer threads served nothing");
    assert_eq!(entry.swap_count(), SWAPS);
    assert_eq!(entry.current().version, SWAPS + 1);
}

#[test]
fn socket_hot_swap_serves_exactly_one_model_per_reply() {
    let after = corner_artifact(22);
    let dir = std::env::temp_dir().join(format!("reds-swap-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let next_path = dir.join("next.json");
    after.save(&next_path).expect("next artifact saves");

    let handle =
        serve(corner_artifact(21), "127.0.0.1:0", ServeLimits::default()).expect("server binds");
    let addr = handle.addr();

    const CLIENTS: usize = 6;
    const REQUESTS: usize = 30;
    let swapped = Arc::new(AtomicBool::new(false));
    let hammers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let before = corner_artifact(21);
            let after = corner_artifact(22);
            let swapped = Arc::clone(&swapped);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connects");
                let mut last = 0u64;
                let mut saw_new = false;
                for r in 0..REQUESTS {
                    let rows = 1 + (c + r) % 4;
                    let query: Vec<f64> = (0..rows * 2)
                        .map(|i| ((i * 13 + c * 7 + r * 3) % 29) as f64 / 29.0)
                        .collect();
                    let (version, served) = client
                        .predict_batch_on(None, &query, 2)
                        .expect("no request may fail across the swap");
                    assert!(version >= last, "version went backwards over the socket");
                    last = version;
                    // Every reply must match ONE artifact bitwise —
                    // the one its reported version names.
                    let expect = if version >= 2 {
                        saw_new = true;
                        after.model.predict_batch(&query, 2)
                    } else {
                        before.model.predict_batch(&query, 2)
                    };
                    assert_eq!(served.len(), expect.len());
                    for (a, b) in served.iter().zip(&expect) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "reply at version {version} mixes models"
                        );
                    }
                    if swapped.load(Ordering::Relaxed) && !saw_new {
                        // Keep hammering a little past the swap so the
                        // new version is actually observed.
                        continue;
                    }
                }
                saw_new
            })
        })
        .collect();

    // Let the hammer run, then flip the model live.
    std::thread::sleep(Duration::from_millis(30));
    let mut controller = Client::connect(addr).expect("controller connects");
    let outcome = controller
        .swap(None, next_path.to_str().unwrap())
        .expect("swap serves");
    assert_eq!(outcome.get("version").and_then(Json::as_f64), Some(2.0));
    assert_eq!(outcome.get("previous").and_then(Json::as_f64), Some(1.0));
    swapped.store(true, Ordering::Relaxed);

    let mut any_new = false;
    for t in hammers {
        any_new |= t.join().expect("socket hammer");
    }

    // Post-swap requests serve the new version...
    let (version, served) = controller
        .predict_batch_on(None, &[0.9, 0.9], 2)
        .expect("post-swap predict");
    assert_eq!(version, 2);
    let expect = after.model.predict_batch(&[0.9, 0.9], 2);
    assert_eq!(served[0].to_bits(), expect[0].to_bits());
    let _ = any_new; // the controller's own post-swap check is authoritative
                     // ...and the registry reports the swap.
    let info = controller.info().expect("info");
    assert_eq!(info.get("version").and_then(Json::as_f64), Some(2.0));
    let models = info.get("models").and_then(Json::as_array).expect("models");
    assert_eq!(models[0].get("swaps").and_then(Json::as_f64), Some(1.0));

    controller.shutdown().expect("shutdown");
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_versions_live_exactly_as_long_as_a_request_pins_them() {
    let limits = ServeLimits::default();
    let registry = ModelRegistry::new(corner_artifact(31), &limits);
    let entry = registry.get(None).expect("default model");

    // Pin version 1 the way an in-flight request would.
    let pinned = entry.current();
    let weak = Arc::downgrade(&pinned);

    // Swap with a short drain window while the pin is held.
    let outcome = entry
        .swap(corner_artifact(32), Duration::from_millis(50))
        .expect("swap");
    assert_eq!(outcome.version, 2);
    assert!(
        !outcome.drained,
        "drain must report failure while a request still pins v1"
    );
    assert!(
        weak.upgrade().is_some(),
        "v1 must stay alive (mapped) while pinned"
    );

    // New work already serves version 2 — the flip never waited.
    let (version, _) = entry.predict(vec![0.5, 0.5]).expect("predicts");
    assert_eq!(version, 2);

    // Releasing the last pin frees the old version (drop = unmap for
    // mmap-backed artifacts).
    drop(pinned);
    let mut freed = false;
    for _ in 0..200 {
        if weak.upgrade().is_none() {
            freed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(freed, "v1 must be dropped once the last pin releases");
}

#[test]
fn a_wedged_backlogged_model_never_blocks_its_neighbours() {
    let limits = ServeLimits {
        queue_depth: 1,
        ..Default::default()
    };
    let registry = ModelRegistry::new(corner_artifact(51), &limits);
    registry
        .install("canary", corner_artifact(52))
        .expect("installs");
    let canary = registry.get(Some("canary")).expect("canary");

    // Wedge the canary's worker: the shim blocks until released,
    // signalling once the worker has actually entered it.
    let entered = Arc::new((Mutex::new(false), Condvar::new()));
    let release = Arc::new((Mutex::new(false), Condvar::new()));
    let (entered2, release2) = (Arc::clone(&entered), Arc::clone(&release));
    let shim: PredictShim = Box::new(move |_, _| {
        let (lock, cv) = &*entered2;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let (lock, cv) = &*release2;
        let mut open = lock.lock().unwrap();
        while !*open {
            open = cv.wait(open).unwrap();
        }
        None
    });
    canary.install_version(
        Arc::new(ModelVersion::with_shim(2, corner_artifact(53), shim)),
        Duration::from_millis(10),
    );

    // First request occupies the worker inside the shim…
    let c1 = Arc::clone(&canary);
    let t1 = std::thread::spawn(move || c1.predict(vec![0.2, 0.2]));
    {
        let (lock, cv) = &*entered;
        let mut inside = lock.lock().unwrap();
        while !*inside {
            inside = cv.wait(inside).unwrap();
        }
    }
    // …the second fills the depth-1 queue…
    let c2 = Arc::clone(&canary);
    let t2 = std::thread::spawn(move || c2.predict(vec![0.3, 0.3]));
    while canary.queue_depth() < 1 {
        std::thread::sleep(Duration::from_millis(1));
    }
    // …and the third is refused immediately with too_busy.
    let err = canary.predict(vec![0.4, 0.4]).expect_err("queue is full");
    assert_eq!(err.code, reds_serve::ErrorCode::TooBusy);
    assert!(err.message.contains("depth limit of 1"), "{}", err.message);

    // The default model is completely unaffected by its wedged
    // neighbour — per-model queues isolate backpressure.
    let (version, preds) = registry
        .get(None)
        .unwrap()
        .predict(vec![0.6, 0.6])
        .expect("default model still serves");
    assert_eq!(version, 1);
    assert_eq!(preds.len(), 1);

    // Release the canary; the queued work completes.
    {
        let (lock, cv) = &*release;
        *lock.lock().unwrap() = true;
        cv.notify_all();
    }
    t1.join().expect("t1").expect("first canary request serves");
    t2.join()
        .expect("t2")
        .expect("queued canary request serves");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any interleaving of swaps, predictions, and current-version
    /// reads keeps installed versions strictly increasing, served
    /// versions non-decreasing, and a served version never ahead of
    /// the latest install.
    #[test]
    fn version_order_is_monotonic_under_any_interleaving(ops in prop::collection::vec(0u32..3, 1..20)) {
        let limits = ServeLimits::default();
        let registry = ModelRegistry::new(corner_artifact(41), &limits);
        let entry = registry.get(None).expect("default model");
        let mut installed = 1u64;
        let mut served = 0u64;
        for op in ops {
            match op {
                0 => {
                    let outcome = entry
                        .swap(corner_artifact(42), Duration::from_millis(200))
                        .expect("swap");
                    prop_assert!(outcome.version > installed);
                    prop_assert_eq!(outcome.previous, installed);
                    installed = outcome.version;
                }
                1 => {
                    let (version, preds) = entry.predict(vec![0.1, 0.9]).expect("predicts");
                    prop_assert_eq!(preds.len(), 1);
                    prop_assert!(version >= served, "served version regressed");
                    prop_assert!(version <= installed, "served a version never installed");
                    served = version;
                }
                _ => {
                    prop_assert_eq!(entry.current().version, installed);
                }
            }
        }
    }
}
