//! Shard-routing equivalence: a router fanning `predict_batch` across
//! worker serving processes must be indistinguishable — bit for bit —
//! from one single-process server loaded with the same artifact, for
//! every model family (forest "f", GBDT "x", SVM "s").
//!
//! Also pins the fleet behaviours: broadcast swap flips every shard,
//! front-enforced limits reject before any shard is touched, and
//! shard-side errors surface as structured errors at the router.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::data::Dataset;
use reds::metamodel::{
    Gbdt, GbdtParams, Metamodel, RandomForest, RandomForestParams, SavedModel, Svm, SvmParams,
};
use reds_json::Json;
use reds_serve::reactor::ConnGauges;
use reds_serve::{
    serve, serve_handler, Algorithm, Client, ClientError, DiscoverParams, ModelArtifact, Router,
    ServeLimits, ServerHandle,
};

/// Deterministic artifact per (family, seed): calling it twice yields
/// bit-identical models, so workers and the reference server can be
/// loaded independently.
fn family_artifact(family: &str, seed: u64) -> ModelArtifact {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = Dataset::from_fn((0..180 * 3).map(|_| rng.gen::<f64>()).collect(), 3, |x| {
        if x[0] > 0.3 && x[1] < 0.8 {
            1.0
        } else {
            0.0
        }
    })
    .unwrap();
    let model = match family {
        "f" => SavedModel::Forest(RandomForest::fit(
            &train,
            &RandomForestParams {
                n_trees: 15,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed ^ 7),
        )),
        "x" => SavedModel::Gbdt(Gbdt::fit(
            &train,
            &GbdtParams {
                n_rounds: 20,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(seed ^ 8),
        )),
        "s" => SavedModel::Svm(Svm::fit(
            &train,
            &SvmParams::default(),
            &mut StdRng::seed_from_u64(seed ^ 9),
        )),
        other => panic!("unknown family {other}"),
    };
    ModelArtifact {
        function: format!("slab-{family}"),
        seed,
        pool_seed: seed.wrapping_add(7_700),
        pool_design: reds_serve::POOL_DESIGN_UNIFORM.to_string(),
        model: model.into(),
        train,
    }
}

/// Two shard workers + a router over them, all serving `artifact`.
fn spawn_fleet(family: &str, seed: u64) -> (ServerHandle, Vec<ServerHandle>) {
    let workers: Vec<ServerHandle> = (0..2)
        .map(|_| {
            serve(
                family_artifact(family, seed),
                "127.0.0.1:0",
                ServeLimits::default(),
            )
            .expect("worker binds")
        })
        .collect();
    let limits = ServeLimits::default();
    let router = Arc::new(
        Router::new(
            workers.iter().map(|w| w.addr().to_string()).collect(),
            limits.clone(),
        )
        .propagate_shutdown(true),
    );
    let front = serve_handler(
        router,
        "127.0.0.1:0",
        limits,
        Arc::new(ConnGauges::default()),
    )
    .expect("router binds");
    (front, workers)
}

fn assert_bits_eq(a: &[f64], b: &[f64], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: lengths differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: row {i}: {x} vs {y}");
    }
}

#[test]
fn routed_answers_are_bit_identical_to_a_single_server_for_every_family() {
    for family in ["f", "x", "s"] {
        let seed = 60;
        let (front, workers) = spawn_fleet(family, seed);
        let reference = serve(
            family_artifact(family, seed),
            "127.0.0.1:0",
            ServeLimits::default(),
        )
        .expect("reference binds");

        let mut routed = Client::connect(front.addr()).expect("connects to router");
        let mut single = Client::connect(reference.addr()).expect("connects to reference");

        // Row counts around the split boundaries: 1 row leaves one
        // shard idle, odd counts split unevenly, and an ∞ coordinate
        // exercises the marker encoding through the reassembly.
        for rows in [1usize, 2, 3, 7, 23] {
            let mut query: Vec<f64> = (0..rows * 3)
                .map(|i| ((i * 17 + rows) % 31) as f64 / 31.0)
                .collect();
            query[0] = f64::INFINITY;
            let via_router = routed
                .predict_batch(&query, 3)
                .expect("router serves predict");
            let via_single = single
                .predict_batch(&query, 3)
                .expect("reference serves predict");
            assert_bits_eq(
                &via_router,
                &via_single,
                &format!("family {family}, {rows} rows"),
            );
        }

        // discover routes whole to one shard; every shard serves the
        // same artifact, so the answer equals the single server's.
        let params = DiscoverParams {
            l: 800,
            seed: 17,
            algorithm: Algorithm::Prim,
            ..Default::default()
        };
        let via_router = routed.discover(&params).expect("router serves discover");
        let via_single = single.discover(&params).expect("reference discover");
        assert_eq!(via_router, via_single, "family {family}: discover differs");

        // The router's info names its shards.
        let info = routed.info().expect("router info");
        assert_eq!(info.get("router").and_then(Json::as_bool), Some(true));
        assert_eq!(info.get("shards").and_then(Json::as_f64), Some(2.0));
        let per_shard = info
            .get("shard_info")
            .and_then(Json::as_array)
            .expect("shard_info");
        assert_eq!(per_shard.len(), 2);
        for shard in per_shard {
            assert_eq!(
                shard.get("family").and_then(Json::as_str),
                Some(family),
                "shard serves the same family"
            );
        }

        single.shutdown().expect("reference shutdown");
        reference.join();
        // Router shutdown propagates to both workers.
        routed.shutdown().expect("router shutdown");
        front.join();
        for w in workers {
            w.join();
        }
    }
}

#[test]
fn broadcast_swap_flips_every_shard_and_stays_bit_identical() {
    let (front, workers) = spawn_fleet("f", 61);
    let next = family_artifact("f", 62);
    let dir = std::env::temp_dir().join(format!("reds-router-swap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let next_path = dir.join("next.json");
    next.save(&next_path).expect("saves");

    let mut client = Client::connect(front.addr()).expect("connects");
    let outcome = client
        .swap(None, next_path.to_str().unwrap())
        .expect("broadcast swap serves");
    let shards = outcome
        .get("shards")
        .and_then(Json::as_array)
        .expect("per-shard outcomes");
    assert_eq!(shards.len(), 2);
    for shard in shards {
        assert_eq!(shard.get("version").and_then(Json::as_f64), Some(2.0));
    }

    // Post-swap routed answers equal the new model in-process.
    let query: Vec<f64> = (0..11 * 3).map(|i| ((i * 5) % 23) as f64 / 23.0).collect();
    let (version, served) = client
        .predict_batch_on(None, &query, 3)
        .expect("post-swap predict");
    assert_eq!(version, 2, "both shards answer from the new version");
    assert_bits_eq(
        &served,
        &next.model.predict_batch(&query, 3),
        "post-swap routed",
    );

    client.shutdown().expect("shutdown");
    front.join();
    for w in workers {
        w.join();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn router_enforces_limits_up_front_and_surfaces_shard_errors() {
    // Workers accept up to the default row cap; the router is capped
    // tighter, so a request whose *halves* each shard would happily
    // serve must still be rejected whole at the front.
    let workers: Vec<ServerHandle> = (0..2)
        .map(|_| {
            serve(
                family_artifact("f", 63),
                "127.0.0.1:0",
                ServeLimits::default(),
            )
            .unwrap()
        })
        .collect();
    let limits = ServeLimits {
        max_rows_per_request: 1_000,
        ..Default::default()
    };
    let router = Arc::new(
        Router::new(
            workers.iter().map(|w| w.addr().to_string()).collect(),
            limits.clone(),
        )
        .propagate_shutdown(true),
    );
    let front = serve_handler(
        router,
        "127.0.0.1:0",
        limits,
        Arc::new(ConnGauges::default()),
    )
    .expect("router binds");
    let mut client = Client::connect(front.addr()).expect("connects");

    let huge = vec![0.5; 2_001 * 3];
    let err = client.predict_batch(&huge, 3).expect_err("too large");
    match err {
        ClientError::Server { code, .. } => assert_eq!(code, "too_large"),
        other => panic!("expected a server error, got {other}"),
    }

    // Width mismatch: only the shards know the model's m, so the error
    // comes back from a shard, tagged as such.
    let err = client.predict_batch(&[0.1, 0.2], 2).expect_err("wrong m");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code, "bad_request");
            assert!(message.contains("shard"), "{message}");
            assert!(message.contains("expects 3 columns"), "{message}");
        }
        other => panic!("expected a server error, got {other}"),
    }

    client.shutdown().expect("shutdown");
    front.join();
    for w in workers {
        w.join();
    }
}
