//! Proves that sharding is invisible in the results: for seeded
//! experiment specs, the monolithic `run_experiment` output is
//! bit-identical to every shard decomposition merged in shuffled order,
//! to a kill-and-resume run that loses a half-written checkpoint line
//! mid-grid, and to runs with different thread counts. The `table3`
//! sweep report produced by shards + `merge_shards` is asserted
//! byte-identical to the unsharded report.
//!
//! Only wall-clock runtimes are exempt (they are measured, not
//! derived); they are stripped before comparison.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use reds::eval::checkpoint::{CheckpointHeader, CheckpointWriter, UnitRecord};
use reds::eval::workunit::{enumerate_units, shard_units, spec_fingerprint};
use reds::eval::{
    aggregate_units, execute_units, load_checkpoint, merge_records, run_experiment, strip_runtimes,
    Evaluation, ExperimentSpec, MethodOpts, MethodSummary, WorkUnit,
};
use reds::functions::by_name;
use reds_bench::sweep::{self, Sweep};
use reds_bench::Args;

fn fast_opts() -> MethodOpts {
    MethodOpts {
        l_prim: 1_000,
        l_bi: 600,
        bumping_q: 3,
        ..Default::default()
    }
}

fn spec(function: &str, n: usize, methods: &[&str], reps: usize, seed: u64) -> ExperimentSpec {
    let mut s = ExperimentSpec::new(by_name(function).expect("registry"), n, methods);
    s.reps = reps;
    s.test_size = 600;
    s.opts = fast_opts();
    s.seed = seed;
    s
}

/// Six seeded specs spanning designs (LHS + Halton via dsgc is too slow
/// here, so LHS variants), PRIM/BI/bumping/REDS method families, and
/// different grid shapes.
fn seeded_specs() -> Vec<ExperimentSpec> {
    vec![
        spec("2", 60, &["P"], 3, 0xA11CE),
        spec("ellipse", 80, &["P", "RPf"], 3, 0xB0B),
        spec("hart3", 70, &["RPx"], 4, 0xC0FFEE),
        spec("morris", 60, &["PB"], 3, 0xD00D),
        spec("sobol", 80, &["BI"], 3, 0xE66),
        spec("borehole", 60, &["P", "BI"], 3, 0xF00),
    ]
}

fn assert_bit_identical(label: &str, a: &[MethodSummary], b: &[MethodSummary]) {
    assert_eq!(a.len(), b.len(), "{label}: summary count");
    for (x, y) in a.iter().zip(b) {
        let m = &x.method;
        assert_eq!(*m, y.method, "{label}: method order");
        for (name, u, v) in [
            ("pr_auc", x.pr_auc, y.pr_auc),
            ("precision", x.precision, y.precision),
            ("wracc", x.wracc, y.wracc),
            ("consistency", x.consistency, y.consistency),
            ("n_restricted", x.n_restricted, y.n_restricted),
            ("n_irrel", x.n_irrel, y.n_irrel),
            ("runtime_ms", x.runtime_ms, y.runtime_ms),
        ] {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{label}: {m}.{name}: {u:?} != {v:?}"
            );
        }
        assert_eq!(x.per_rep.len(), y.per_rep.len(), "{label}: {m} reps");
        for (i, (e, f)) in x.per_rep.iter().zip(&y.per_rep).enumerate() {
            for (name, u, v) in [
                ("pr_auc", e.pr_auc, f.pr_auc),
                ("precision", e.precision, f.precision),
                ("recall", e.recall, f.recall),
                ("wracc", e.wracc, f.wracc),
                ("runtime_ms", e.runtime_ms, f.runtime_ms),
            ] {
                assert_eq!(u.to_bits(), v.to_bits(), "{label}: {m} rep {i} {name}");
            }
            assert_eq!(e.n_restricted, f.n_restricted, "{label}: {m} rep {i}");
            assert_eq!(e.n_irrel, f.n_irrel, "{label}: {m} rep {i}");
            assert_eq!(e.last_box, f.last_box, "{label}: {m} rep {i} box");
        }
    }
}

fn monolithic(s: &ExperimentSpec) -> Vec<MethodSummary> {
    let mut summaries = run_experiment(s);
    strip_runtimes(&mut summaries);
    summaries
}

/// Executes every shard of a `k`-way split separately, merges the
/// partial results in a shuffled order, and aggregates.
fn sharded(s: &ExperimentSpec, k: usize, shuffle_seed: u64) -> Vec<MethodSummary> {
    let units = enumerate_units(s);
    let mut merged: Vec<(WorkUnit, Evaluation)> = Vec::new();
    for shard in 0..k {
        merged.extend(execute_units(s, &shard_units(&units, shard, k)));
    }
    let mut rng = StdRng::seed_from_u64(shuffle_seed);
    merged.shuffle(&mut rng);
    let mut summaries = aggregate_units(s, &merged).expect("complete grid");
    strip_runtimes(&mut summaries);
    summaries
}

fn check_shard_splits(s: &ExperimentSpec) {
    let label = format!("{} N={}", s.function.name(), s.n);
    let mono = monolithic(s);
    for k in [2, 3, 7] {
        let merged = sharded(s, k, 0x5EED ^ k as u64);
        assert_bit_identical(&format!("{label} k={k}"), &mono, &merged);
    }
}

// The six specs are spread over three #[test] functions so the harness
// runs them in parallel.

#[test]
fn shard_splits_match_monolithic_prim_specs() {
    for s in &seeded_specs()[0..2] {
        check_shard_splits(s);
    }
}

#[test]
fn shard_splits_match_monolithic_reds_and_bumping_specs() {
    for s in &seeded_specs()[2..4] {
        check_shard_splits(s);
    }
}

#[test]
fn shard_splits_match_monolithic_bi_specs() {
    for s in &seeded_specs()[4..6] {
        check_shard_splits(s);
    }
}

#[test]
fn thread_count_does_not_change_results() {
    let mut one = seeded_specs().remove(1);
    one.threads = 1;
    let mut many = one.clone();
    many.threads = 4;
    assert_bit_identical("threads 1 vs 4", &monolithic(&one), &monolithic(&many));
}

#[test]
fn kill_and_resume_matches_monolithic() {
    let dir = std::env::temp_dir().join(format!("reds-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    for (i, s) in seeded_specs()[..2].iter().enumerate() {
        let label = format!("resume {} N={}", s.function.name(), s.n);
        let mono = monolithic(s);
        let fp = spec_fingerprint(s);
        let header = CheckpointHeader::new(fp.clone(), 0, 1);
        let path = dir.join(format!("spec{i}.jsonl"));

        // First run: completes half the grid, then "crashes" while
        // appending the next record.
        let units = enumerate_units(s);
        let half = units.len() / 2;
        {
            let mut w = CheckpointWriter::create(&path, &header).expect("create");
            for (unit, eval) in execute_units(s, &units[..half]) {
                w.append(&UnitRecord {
                    spec: fp.clone(),
                    unit,
                    eval,
                    attempt: 0,
                })
                .expect("append");
            }
        }
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str(r#"{"spec":"interrupted mid-"#);
        std::fs::write(&path, &text).expect("inject partial line");

        // Second run: resumes, skips completed units, finishes the rest.
        let (mut w, done) = CheckpointWriter::resume(&path, &header).expect("resume");
        assert_eq!(done.len(), half, "{label}: recovered units");
        let todo: Vec<WorkUnit> = units
            .iter()
            .filter(|u| !done.iter().any(|r| r.unit == **u))
            .cloned()
            .collect();
        for (unit, eval) in execute_units(s, &todo) {
            w.append(&UnitRecord {
                spec: fp.clone(),
                unit,
                eval,
                attempt: 0,
            })
            .expect("append");
        }
        drop(w);

        // Merge the final checkpoint — everything came through the
        // serialize → parse round trip.
        let ck = load_checkpoint(&path).expect("load");
        assert!(!ck.truncated, "{label}: resume rewrote the partial line");
        let records = merge_records(&fp, &[ck]).expect("merge");
        let results: Vec<(WorkUnit, Evaluation)> =
            records.into_iter().map(|r| (r.unit, r.eval)).collect();
        let mut resumed = aggregate_units(s, &results).expect("complete grid");
        strip_runtimes(&mut resumed);
        assert_bit_identical(&label, &mono, &resumed);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The PR's acceptance criterion: `table3 --shard 0/2` plus
/// `--shard 1/2` plus `merge_shards` produce byte-identical report
/// output to an unsharded `table3` run of the same spec — asserted here
/// through the same sweep/render code paths the binaries call.
#[test]
fn table3_shard_merge_report_is_byte_identical() {
    let args = Args::from_tokens(
        [
            "--functions",
            "2,ellipse",
            "--ns",
            "60",
            "--reps",
            "2",
            "--l",
            "1000",
            "--l-bi",
            "600",
            "--q",
            "3",
            "--test",
            "600",
            "--methods",
            "P,RPf",
        ]
        .iter()
        .map(|s| s.to_string()),
    );
    let sweep = Sweep::table3(&args);
    let dir = std::env::temp_dir().join(format!("reds-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Unsharded reference report.
    let mono = sweep::run_shard(&sweep, 0, 1, None, false).expect("monolithic");
    let mono_report = sweep::render(&sweep, &sweep::aggregate(&sweep, &mono.records).unwrap());

    // Two shards, checkpointed, merged like the merge_shards binary.
    for shard in 0..2 {
        let out = sweep::run_shard(&sweep, shard, 2, Some(&dir), false).expect("shard");
        assert!(out.executed > 0, "both shards hold work");
    }
    let merged = sweep::merge_dir(&sweep, &dir).expect("merge");
    let merged_report = sweep::render(&sweep, &merged);
    assert_eq!(
        mono_report, merged_report,
        "sharded and monolithic reports must be byte-identical"
    );

    // An interrupted + resumed monolithic run matches too.
    let ck_path = dir.join(sweep::shard_file_name(0, 1));
    {
        let out = sweep::run_shard(&sweep, 0, 1, Some(&dir), false).expect("full checkpoint");
        assert_eq!(out.executed, sweep.total_units());
    }
    let full = std::fs::read_to_string(&ck_path).expect("read");
    let keep: Vec<&str> = full.lines().take(1 + sweep.total_units() / 2).collect();
    std::fs::write(&ck_path, format!("{}\n{{\"spec\":\"cut", keep.join("\n"))).expect("truncate");
    let resumed = sweep::run_shard(&sweep, 0, 1, Some(&dir), true).expect("resume");
    assert_eq!(resumed.skipped, sweep.total_units() / 2);
    let resumed_report =
        sweep::render(&sweep, &sweep::aggregate(&sweep, &resumed.records).unwrap());
    assert_eq!(mono_report, resumed_report, "resumed report differs");

    std::fs::remove_dir_all(&dir).ok();
}
