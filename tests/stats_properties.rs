//! Property-based tests of the statistical machinery in `reds-eval`.

use proptest::prelude::*;
use reds::eval::stats::{
    average_ranks, chi2_sf, friedman_test, norm_cdf, spearman, wilcoxon_rank_sum,
    wilcoxon_signed_rank,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ranks_are_a_permutation_mass(values in prop::collection::vec(-10.0f64..10.0, 1..40)) {
        let ranks = average_ranks(&values);
        // Sum of ranks is always n(n+1)/2 regardless of ties.
        let n = values.len() as f64;
        let total: f64 = ranks.iter().sum();
        prop_assert!((total - n * (n + 1.0) / 2.0).abs() < 1e-9);
        prop_assert!(ranks.iter().all(|&r| r >= 1.0 && r <= n));
    }

    #[test]
    fn rank_order_respects_value_order(
        mut values in prop::collection::vec(-10.0f64..10.0, 2..30),
    ) {
        values.dedup();
        let ranks = average_ranks(&values);
        for i in 0..values.len() {
            for j in 0..values.len() {
                if values[i] < values[j] {
                    prop_assert!(ranks[i] < ranks[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn norm_cdf_is_monotone_and_bounded(a in -6.0f64..6.0, b in -6.0f64..6.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(norm_cdf(lo) <= norm_cdf(hi) + 1e-12);
        prop_assert!((0.0..=1.0).contains(&norm_cdf(a)));
        // Symmetry Φ(−z) = 1 − Φ(z).
        prop_assert!((norm_cdf(-a) - (1.0 - norm_cdf(a))).abs() < 1e-7);
    }

    #[test]
    fn rank_sum_p_is_valid_and_symmetric(
        a in prop::collection::vec(0.0f64..1.0, 5..25),
        b in prop::collection::vec(0.0f64..1.0, 5..25),
    ) {
        let p_ab = wilcoxon_rank_sum(&a, &b);
        let p_ba = wilcoxon_rank_sum(&b, &a);
        prop_assert!((0.0..=1.0).contains(&p_ab), "p = {}", p_ab);
        prop_assert!((p_ab - p_ba).abs() < 1e-9, "two-sided test must be symmetric");
    }

    #[test]
    fn signed_rank_p_is_valid(
        pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 6..30),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let p = wilcoxon_signed_rank(&a, &b);
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
        // Identical samples are maximally insignificant.
        prop_assert!((wilcoxon_signed_rank(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi2_sf_is_monotone_decreasing(x in 0.0f64..50.0, k in 1usize..10) {
        let p1 = chi2_sf(x, k);
        let p2 = chi2_sf(x + 1.0, k);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 <= p1 + 1e-9);
    }

    #[test]
    fn friedman_p_is_valid(
        scores in prop::collection::vec(prop::collection::vec(0.0f64..1.0, 3), 2..20),
    ) {
        let (chi2, p) = friedman_test(&scores);
        prop_assert!(chi2.is_finite());
        prop_assert!((0.0..=1.0).contains(&p), "p = {}", p);
    }

    #[test]
    fn spearman_is_bounded_and_symmetric(
        pairs in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 3..30),
    ) {
        let a: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let rho = spearman(&a, &b);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&rho), "rho = {}", rho);
        prop_assert!((rho - spearman(&b, &a)).abs() < 1e-9);
    }
}

// ---- paired-comparison edge cases (ties, single rep, identical
// methods) — the degenerate shapes a sharded sweep can feed the
// post-hoc tests when a grid is tiny. All must stay well-defined.

#[test]
fn signed_rank_identical_methods_are_inconclusive() {
    // Two methods with bit-identical per-rep scores: every difference is
    // zero, Wilcoxon's rule drops them all, p must be 1 (never NaN).
    let a = vec![0.52, 0.61, 0.7, 0.44, 0.8, 0.9, 0.31];
    let p = wilcoxon_signed_rank(&a, &a.clone());
    assert_eq!(p, 1.0);
}

#[test]
fn signed_rank_single_rep_is_inconclusive() {
    assert_eq!(wilcoxon_signed_rank(&[0.7], &[0.2]), 1.0);
    assert_eq!(wilcoxon_signed_rank(&[], &[]), 1.0);
}

#[test]
fn signed_rank_handles_fully_tied_magnitudes() {
    // All non-zero differences share the same magnitude — the rank
    // vector is one big tie. p stays finite and in range.
    let a = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
    let b: Vec<f64> = a.iter().map(|x| x + 0.5).collect();
    let p = wilcoxon_signed_rank(&a, &b);
    assert!((0.0..=1.0).contains(&p), "p = {p}");
    assert!(p < 0.05, "a uniform shift over 7 pairs is significant");
}

#[test]
fn rank_sum_all_tied_values_are_inconclusive() {
    // Identical constant samples: the tie-corrected variance collapses
    // to zero; the test must answer 1, not divide by zero.
    let a = vec![0.5; 8];
    assert_eq!(wilcoxon_rank_sum(&a, &a.clone()), 1.0);
    assert_eq!(wilcoxon_rank_sum(&[], &a), 1.0);
}

#[test]
fn rank_sum_single_observations() {
    let p = wilcoxon_rank_sum(&[1.0], &[2.0]);
    assert!((0.0..=1.0).contains(&p), "p = {p}");
}

#[test]
fn friedman_degenerate_shapes_are_inconclusive() {
    // Single block (one function), single treatment, ragged rows, and
    // fully tied scores all degrade to (0-ish, 1) rather than NaN.
    let (_, p) = friedman_test(&[vec![1.0, 2.0, 3.0]]);
    assert!((0.0..=1.0).contains(&p), "single block: p = {p}");
    assert_eq!(friedman_test(&[vec![1.0], vec![2.0]]), (0.0, 1.0));
    assert_eq!(friedman_test(&[]), (0.0, 1.0));
    assert_eq!(
        friedman_test(&[vec![1.0, 2.0], vec![1.0, 2.0, 3.0]]),
        (0.0, 1.0),
        "ragged input"
    );
    let (chi2, p) = friedman_test(&[vec![0.5; 4], vec![0.5; 4], vec![0.5; 4]]);
    assert!(chi2 <= 1e-9, "all-tied chi2 = {chi2}");
    assert!(p > 0.99, "all-tied p = {p}");
}

#[test]
fn average_ranks_of_identical_values_share_the_mean_rank() {
    let r = average_ranks(&[7.0; 5]);
    assert_eq!(r, vec![3.0; 5]);
    assert_eq!(average_ranks(&[1.0]), vec![1.0]);
}

#[test]
fn spearman_with_heavy_ties_stays_bounded() {
    let a = vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
    let b = vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0];
    let rho = spearman(&a, &b);
    assert!((-1.0..=1.0).contains(&rho), "rho = {rho}");
    // A constant sample has zero rank variance: defined as 0.
    assert_eq!(spearman(&[4.0; 6], &a), 0.0);
}

#[test]
fn hyperbox_json_roundtrip() {
    // Scenario persistence: a discovered box survives a JSON round trip,
    // including unbounded sides (encoded as `null` by `to_json`).
    use reds::subgroup::HyperBox;
    let finite = HyperBox::from_bounds(vec![(0.1, 0.9), (0.25, 0.75)]);
    let parsed = reds_json::from_str(&finite.to_json().to_string_compact()).expect("parses");
    assert_eq!(HyperBox::from_json(&parsed).expect("valid"), finite);

    let mut open = HyperBox::unbounded(3);
    open.set_lower(1, -2.5);
    let parsed = reds_json::from_str(&open.to_json().to_string_pretty()).expect("parses");
    assert_eq!(HyperBox::from_json(&parsed).expect("valid"), open);
}
