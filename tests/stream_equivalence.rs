//! Equivalence oracle for the streaming pipeline (`reds-stream`).
//!
//! `Reds::discover_streaming` must be **bit-identical** to `Reds::run`
//! — same boxes, same bounds bits, same post-run RNG state — for every
//! chunk size, every metamodel family (Rf / Rx / Rs), and every
//! subgroup-discovery algorithm that consumes the presorted view
//! (PRIM, BestInterval, CART). These tests sweep 8+ seeds per family,
//! the degenerate chunkings (chunk = 1, chunk ≥ L), arbitrary
//! proptest-drawn chunkings, and the caller-pool entry point.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reds::core::{NewPointSampler, Reds, RedsConfig, StreamConfig};
use reds::data::Dataset;
use reds::metamodel::{GbdtParams, RandomForestParams, SvmParams};
use reds::subgroup::{BestInterval, CartSd, HyperBox, Prim, SubgroupDiscovery};

fn corner_data(n: usize, m: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    Dataset::from_fn((0..n * m).map(|_| rng.gen::<f64>()).collect(), m, |x| {
        if x[0] > 0.55 && x[1] > 0.55 {
            1.0
        } else {
            0.0
        }
    })
    .expect("valid shape")
}

fn assert_boxes_bits_eq(a: &[HyperBox], b: &[HyperBox], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: box counts differ");
    for (step, (ba, bb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ba.m(), bb.m(), "{context}: box {step} dimensionality");
        for j in 0..ba.m() {
            let ((la, ha), (lb, hb)) = (ba.bound(j), bb.bound(j));
            assert!(
                la.to_bits() == lb.to_bits() && ha.to_bits() == hb.to_bits(),
                "{context}: box {step} dim {j}: ({la}, {ha}) vs ({lb}, {hb})"
            );
        }
    }
}

fn quick_forest() -> RandomForestParams {
    RandomForestParams {
        n_trees: 40,
        ..Default::default()
    }
}

fn family(tag: &str, l: usize) -> Reds {
    let config = RedsConfig::default().with_l(l);
    match tag {
        "f" => Reds::random_forest(quick_forest(), config),
        "x" => Reds::xgboost(
            GbdtParams {
                n_rounds: 30,
                ..Default::default()
            },
            config,
        ),
        "s" => Reds::svm(SvmParams::default(), config),
        other => panic!("unknown family {other}"),
    }
}

/// Streaming ≡ monolithic for all three metamodel families across 8
/// seeds, with a chunk size that never divides `L` evenly.
#[test]
fn streaming_matches_run_for_all_families_over_eight_seeds() {
    for tag in ["f", "x", "s"] {
        let l = if tag == "s" { 1_200 } else { 2_000 };
        for seed in 0..8u64 {
            let d = corner_data(110, 2, 1_000 + seed);
            let reds = family(tag, l);
            let reference = reds
                .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(seed))
                .expect("monolithic run");
            let streamed = reds
                .discover_streaming(
                    &d,
                    &Prim::default(),
                    &mut StdRng::seed_from_u64(seed),
                    &StreamConfig::new().with_chunk_rows(677),
                )
                .expect("streaming run");
            assert_boxes_bits_eq(
                &reference.boxes,
                &streamed.boxes,
                &format!("family {tag}, seed {seed}"),
            );
        }
    }
}

/// The degenerate chunkings — one row at a time, and one chunk holding
/// everything — across all three families.
#[test]
fn extreme_chunk_sizes_are_bit_identical_for_all_families() {
    for tag in ["f", "x", "s"] {
        let l = 400;
        let d = corner_data(90, 2, 77);
        let reds = family(tag, l);
        let reference = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(7))
            .expect("monolithic run");
        for chunk in [1usize, l, l + 123] {
            let streamed = reds
                .discover_streaming(
                    &d,
                    &Prim::default(),
                    &mut StdRng::seed_from_u64(7),
                    &StreamConfig::new().with_chunk_rows(chunk),
                )
                .expect("streaming run");
            assert_boxes_bits_eq(
                &reference.boxes,
                &streamed.boxes,
                &format!("family {tag}, chunk {chunk}"),
            );
        }
    }
}

/// Every presorted consumer — PRIM, BestInterval, and CART — yields
/// bit-identical boxes when fed the out-of-core merged view.
#[test]
fn all_presorted_algorithms_agree_with_the_monolithic_path() {
    let algorithms: [(&str, &dyn SubgroupDiscovery); 3] = [
        ("prim", &Prim::default()),
        ("bi", &BestInterval::default()),
        ("cart", &CartSd::default()),
    ];
    for (name, sd) in algorithms {
        for seed in 0..3u64 {
            let d = corner_data(130, 3, 500 + seed);
            let reds = family("f", 1_500);
            let reference = reds
                .run(&d, sd, &mut StdRng::seed_from_u64(30 + seed))
                .expect("monolithic run");
            let streamed = reds
                .discover_streaming(
                    &d,
                    sd,
                    &mut StdRng::seed_from_u64(30 + seed),
                    &StreamConfig::new().with_chunk_rows(191),
                )
                .expect("streaming run");
            assert_boxes_bits_eq(
                &reference.boxes,
                &streamed.boxes,
                &format!("algorithm {name}, seed {seed}"),
            );
        }
    }
}

/// A paper-default-scale case: `L = 10⁵` through the forest family.
#[test]
fn paper_default_l_is_bit_identical() {
    let d = corner_data(200, 2, 9_000);
    let reds = family("f", 100_000);
    let reference = reds
        .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(90))
        .expect("monolithic run");
    for chunk in [8_192usize, 100_000] {
        let streamed = reds
            .discover_streaming(
                &d,
                &Prim::default(),
                &mut StdRng::seed_from_u64(90),
                &StreamConfig::new().with_chunk_rows(chunk),
            )
            .expect("streaming run");
        assert_boxes_bits_eq(&reference.boxes, &streamed.boxes, &format!("chunk {chunk}"));
    }
}

/// The logit-normal sampler (semi-supervised experiments) streams too.
#[test]
fn logit_normal_sampler_streams_bit_identically() {
    let d = corner_data(100, 2, 44);
    let config = RedsConfig::default()
        .with_l(900)
        .with_sampler(NewPointSampler::LogitNormal {
            mu: 0.0,
            sigma: 1.0,
        });
    let reds = Reds::random_forest(quick_forest(), config);
    let reference = reds
        .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(45))
        .expect("monolithic run");
    let streamed = reds
        .discover_streaming(
            &d,
            &Prim::default(),
            &mut StdRng::seed_from_u64(45),
            &StreamConfig::new().with_chunk_rows(101),
        )
        .expect("streaming run");
    assert_boxes_bits_eq(&reference.boxes, &streamed.boxes, "logit-normal");
}

/// The caller-pool entry point (semi-supervised REDS) streams
/// bit-identically, probability labels included.
#[test]
fn pool_streaming_matches_run_on_pool_with_probability_labels() {
    let d = corner_data(80, 2, 55);
    let mut pool_rng = StdRng::seed_from_u64(56);
    let pool = reds::sampling::uniform(800, 2, &mut pool_rng);
    let reds = Reds::random_forest(
        quick_forest(),
        RedsConfig::default().with_probability_labels(),
    );
    let reference = reds
        .run_on_pool(&d, &pool, &Prim::default(), &mut StdRng::seed_from_u64(57))
        .expect("monolithic pool run");
    let streamed = reds
        .discover_streaming_on_pool(
            &d,
            &pool,
            &Prim::default(),
            &mut StdRng::seed_from_u64(57),
            &StreamConfig::new().with_chunk_rows(33),
        )
        .expect("streaming pool run");
    assert_boxes_bits_eq(&reference.boxes, &streamed.boxes, "pool + probability");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary chunk sizes (1 ..= beyond-L) against the monolithic
    /// path — pseudo-labeling, out-of-core sort, and subgroup search
    /// all bit-identical under proptest-drawn chunkings.
    #[test]
    fn any_chunking_is_bit_identical(
        seed in 0u64..1_000,
        chunk in 1usize..700,
        l in 150usize..500,
    ) {
        let d = corner_data(70, 2, seed.wrapping_mul(31).wrapping_add(3));
        let reds = family("f", l);
        let reference = reds
            .run(&d, &Prim::default(), &mut StdRng::seed_from_u64(seed))
            .expect("monolithic run");
        let streamed = reds
            .discover_streaming(
                &d,
                &Prim::default(),
                &mut StdRng::seed_from_u64(seed),
                &StreamConfig::new().with_chunk_rows(chunk),
            )
            .expect("streaming run");
        assert_boxes_bits_eq(
            &reference.boxes,
            &streamed.boxes,
            &format!("seed {seed}, chunk {chunk}, l {l}"),
        );
    }
}
