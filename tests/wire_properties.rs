//! Property-based tests of the NDJSON frame codec both the serving
//! layer and the fleet protocol ride on: arbitrary frames survive
//! write → chunked/torn read byte-for-byte, oversized lines are
//! rejected and drained without desynchronising the stream, and a
//! reply scanner (the coordinator's stale-frame skip) finds its reply
//! under duplicated ids and out-of-order delivery.

use std::io::{BufRead, Cursor, Read};

use proptest::prelude::*;
use reds_json::Json;
use reds_serve::wire::{
    drain_oversized_line, read_frame, write_frame, Frame, FrameBuffer, FrameEvent, Wait, WaitPolicy,
};

const MAX: usize = 1 << 16;

fn never_block() -> impl WaitPolicy {
    || -> Wait { panic!("in-memory reads never block") }
}

/// A reader that serves its bytes in a fixed schedule of chunk sizes,
/// so `fill_buf` boundaries land at arbitrary points inside frames —
/// the user-space analogue of TCP segmentation.
struct Chopped {
    data: Vec<u8>,
    at: usize,
    chunks: Vec<usize>,
    chunk_i: usize,
}

impl Read for Chopped {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.at >= self.data.len() {
            return Ok(0);
        }
        let want = self
            .chunks
            .get(self.chunk_i)
            .copied()
            .unwrap_or(usize::MAX)
            .clamp(1, out.len())
            .min(self.data.len() - self.at);
        self.chunk_i += 1;
        out[..want].copy_from_slice(&self.data[self.at..self.at + want]);
        self.at += want;
        Ok(want)
    }
}

impl BufRead for Chopped {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.at >= self.data.len() {
            return Ok(&[]);
        }
        let want = self
            .chunks
            .get(self.chunk_i)
            .copied()
            .unwrap_or(usize::MAX)
            .clamp(1, self.data.len() - self.at);
        Ok(&self.data[self.at..self.at + want])
    }

    fn consume(&mut self, n: usize) {
        self.at += n;
        if n > 0 {
            self.chunk_i += 1;
        }
    }
}

fn arb_doc() -> impl Strategy<Value = Json> {
    (
        0u64..1_000_000,
        prop::collection::vec(0u32..26, 0..24).prop_map(|cs| {
            cs.into_iter()
                .map(|c| (b'a' + c as u8) as char)
                .collect::<String>()
        }),
        prop::collection::vec(-1e6f64..1e6, 0..6),
    )
        .prop_map(|(id, s, xs)| {
            Json::obj([
                ("id", Json::num(id as f64)),
                ("payload", Json::str(s)),
                ("xs", Json::arr(xs.into_iter().map(Json::num))),
            ])
        })
}

proptest! {
    /// write_frame → read_frame is the identity on frame sequences, no
    /// matter how the bytes are chunked on the way back in.
    #[test]
    fn frames_round_trip_under_arbitrary_chunking(
        docs in prop::collection::vec(arb_doc(), 1..8),
        chunks in prop::collection::vec(1usize..40, 0..64),
    ) {
        let mut bytes = Vec::new();
        for doc in &docs {
            write_frame(&mut bytes, doc).expect("write");
        }
        let mut reader = Chopped { data: bytes, at: 0, chunks, chunk_i: 0 };
        for doc in &docs {
            match read_frame(&mut reader, MAX, &mut never_block()).expect("read") {
                Frame::Line(line) => {
                    let text = String::from_utf8(line).expect("utf8");
                    let back = reds_json::from_str(&text).expect("parse");
                    prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
                }
                other => prop_assert!(false, "expected a line, got {:?}", other),
            }
        }
        prop_assert!(matches!(
            read_frame(&mut reader, MAX, &mut never_block()).expect("eof"),
            Frame::Eof
        ));
    }

    /// A stream cut mid-frame (torn write) yields the partial bytes as
    /// a Line — the protocol layer rejects it as malformed JSON — and
    /// never hangs, panics, or invents trailing frames.
    #[test]
    fn torn_final_frames_surface_as_rejectable_lines(
        doc in arb_doc(),
        cut in 1usize..200,
        chunks in prop::collection::vec(1usize..16, 0..32),
    ) {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &doc).expect("write");
        // Always lose at least the closing brace and the newline, so
        // the remaining prefix can never be a complete document.
        let cut = cut.min(bytes.len() - 2).max(1);
        bytes.truncate(cut);
        let mut reader = Chopped { data: bytes.clone(), at: 0, chunks, chunk_i: 0 };
        match read_frame(&mut reader, MAX, &mut never_block()).expect("read") {
            Frame::Line(line) => {
                prop_assert_eq!(&line[..], &bytes[..]);
                // A torn JSON document must not parse as a complete one
                // unless the cut happened to keep it whole — it cannot,
                // because the full serialization is strictly longer.
                prop_assert!(reds_json::from_str(&String::from_utf8_lossy(&line)).is_err());
            }
            Frame::Eof => prop_assert_eq!(cut, 0),
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// An oversized line is rejected, drained, and the next frame reads
    /// intact: one bad peer message cannot desynchronise the stream.
    #[test]
    fn oversized_lines_drain_without_desync(
        filler in 1usize..4096,
        doc in arb_doc(),
    ) {
        let cap = 256usize;
        let mut bytes = vec![b'x'; cap + filler];
        bytes.push(b'\n');
        write_frame(&mut bytes, &doc).expect("write");
        let mut reader = Cursor::new(bytes);
        prop_assert!(matches!(
            read_frame(&mut reader, cap, &mut never_block()).expect("read"),
            Frame::TooLarge
        ));
        drain_oversized_line(&mut reader, 1 << 20).expect("drain");
        match read_frame(&mut reader, MAX, &mut never_block()).expect("next") {
            Frame::Line(line) => {
                let back = reds_json::from_str(&String::from_utf8_lossy(&line)).expect("parse");
                prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
            }
            other => prop_assert!(false, "stream desynchronised: {:?}", other),
        }
    }

    /// The reply-matching loop the fleet coordinator uses — skip frames
    /// whose id differs — finds the wanted reply under duplicated ids
    /// and out-of-order delivery, exactly once.
    #[test]
    fn reply_scan_survives_duplicates_and_reordering(
        mut ids in prop::collection::vec(0u64..6, 1..12),
        dup_at in 0usize..12,
        swap in (0usize..12, 0usize..12),
        want in 0u64..6,
    ) {
        // Ensure the wanted reply exists, then duplicate and reorder.
        ids.push(want);
        let dup = ids[dup_at % ids.len()];
        ids.push(dup);
        let (a, b) = swap;
        let (a, b) = (a % ids.len(), b % ids.len());
        ids.swap(a, b);

        let mut bytes = Vec::new();
        for (pos, id) in ids.iter().enumerate() {
            let doc = Json::obj([
                ("id", Json::num(*id as f64)),
                ("pos", Json::num(pos as f64)),
            ]);
            write_frame(&mut bytes, &doc).expect("write");
        }
        let mut reader = Cursor::new(bytes);
        let first_pos = ids.iter().position(|&i| i == want).expect("present");
        loop {
            match read_frame(&mut reader, MAX, &mut never_block()).expect("read") {
                Frame::Line(line) => {
                    let doc = reds_json::from_str(&String::from_utf8_lossy(&line)).expect("parse");
                    let id = doc.get("id").and_then(Json::as_f64).expect("id") as u64;
                    if id != want {
                        continue; // the stale-frame skip under test
                    }
                    let pos = doc.get("pos").and_then(Json::as_f64).expect("pos") as usize;
                    prop_assert_eq!(pos, first_pos, "must take the earliest matching reply");
                    break;
                }
                other => {
                    prop_assert!(false, "reply never found: {:?}", other);
                }
            }
        }
    }

    /// The reactor's push decoder and the blocking pull decoder are
    /// the same codec: fed identical bytes under arbitrary chunking
    /// (TCP segmentation), they emit identical frame sequences —
    /// including a torn trailing line at EOF.
    #[test]
    fn push_decoder_matches_pull_decoder_under_any_chunking(
        docs in prop::collection::vec(arb_doc(), 1..8),
        tail in prop::collection::vec(0u32..26, 0..12),
        chunks in prop::collection::vec(1usize..40, 0..64),
    ) {
        let mut bytes = Vec::new();
        for doc in &docs {
            write_frame(&mut bytes, doc).expect("write");
        }
        // A torn trailing line (no newline before EOF).
        bytes.extend(tail.iter().map(|c| b'a' + *c as u8));

        // Pull side: the blocking reader the client uses.
        let mut pull_lines = Vec::new();
        let mut reader = Cursor::new(bytes.clone());
        loop {
            match read_frame(&mut reader, MAX, &mut never_block()).expect("read") {
                Frame::Line(line) => pull_lines.push(line),
                Frame::Eof => break,
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }

        // Push side: the reactor's incremental decoder, fed the same
        // bytes in arbitrary chunks.
        let mut fb = FrameBuffer::new(MAX);
        let mut push_lines = Vec::new();
        let (mut at, mut chunk_i) = (0usize, 0usize);
        while at < bytes.len() {
            let take = chunks
                .get(chunk_i)
                .copied()
                .unwrap_or(usize::MAX)
                .clamp(1, bytes.len() - at);
            chunk_i += 1;
            let mut chunk = &bytes[at..at + take];
            at += take;
            while !chunk.is_empty() {
                let (used, event) = fb.push(chunk);
                prop_assert!(used > 0, "push must always make progress");
                chunk = &chunk[used..];
                match event {
                    Some(FrameEvent::Frame(line)) => push_lines.push(line),
                    Some(other) => prop_assert!(false, "unexpected event {:?}", other),
                    None => {}
                }
            }
        }
        if let Some(torn) = fb.take_trailing() {
            push_lines.push(torn);
        }
        prop_assert_eq!(push_lines, pull_lines);
    }

    /// The push decoder rejects an oversized line exactly once, drains
    /// it, and decodes the next frame intact — the same
    /// reject-drain-resync contract as read_frame + drain_oversized_line,
    /// under any chunking.
    #[test]
    fn push_decoder_rejects_and_resyncs_like_the_pull_decoder(
        filler in 1usize..2048,
        doc in arb_doc(),
        chunks in prop::collection::vec(1usize..32, 0..48),
    ) {
        let cap = 256usize;
        let mut bytes = vec![b'x'; cap + filler];
        bytes.push(b'\n');
        write_frame(&mut bytes, &doc).expect("write");

        let mut fb = FrameBuffer::new(cap);
        let mut events: Vec<&str> = Vec::new();
        let mut lines = Vec::new();
        let (mut at, mut chunk_i) = (0usize, 0usize);
        while at < bytes.len() {
            let take = chunks
                .get(chunk_i)
                .copied()
                .unwrap_or(usize::MAX)
                .clamp(1, bytes.len() - at);
            chunk_i += 1;
            let mut chunk = &bytes[at..at + take];
            at += take;
            while !chunk.is_empty() {
                let (used, event) = fb.push(chunk);
                chunk = &chunk[used..];
                match event {
                    Some(FrameEvent::Frame(line)) => {
                        events.push("frame");
                        lines.push(line);
                    }
                    Some(FrameEvent::TooLarge) => events.push("too_large"),
                    Some(FrameEvent::DrainEnd) => events.push("drain_end"),
                    None => prop_assert!(used > 0, "push must always make progress"),
                }
            }
        }
        prop_assert_eq!(events, vec!["too_large", "drain_end", "frame"]);
        prop_assert!(!fb.discarding(), "decoder must resync after the bad line");
        prop_assert!(fb.take_trailing().is_none());
        let back = reds_json::from_str(&String::from_utf8_lossy(&lines[0])).expect("parse");
        prop_assert_eq!(back.to_string_compact(), doc.to_string_compact());
    }
}
