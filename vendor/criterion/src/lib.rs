//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — implemented as a small wall-clock harness:
//! per benchmark it warms up briefly, then reports the median, mean, and
//! minimum iteration time. Set `CRITERION_SAMPLE_MS` to change the
//! per-benchmark time budget (default 300 ms).

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Self {
            samples: Vec::new(),
            budget,
        }
    }

    /// Times repeated runs of `routine` until the sample budget is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: one untimed run (JIT-free in Rust, but it faults pages
        // and warms caches).
        black_box(routine());
        let started = Instant::now();
        while started.elapsed() < self.budget || self.samples.len() < 3 {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if self.samples.len() >= 10_000 {
                break;
            }
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} no samples");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        println!(
            "{label:<50} median {:>12?}  mean {:>12?}  min {:>12?}  ({} samples)",
            median,
            mean,
            min,
            sorted.len()
        );
    }
}

fn sample_budget() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        let mut bencher = Bencher::new(sample_budget());
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{id}", self.name);
        let mut bencher = Bencher::new(sample_budget());
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function(&mut self, id: impl Display, mut f: impl FnMut(&mut Bencher)) {
        let label = id.to_string();
        let mut bencher = Bencher::new(sample_budget());
        f(&mut bencher);
        bencher.report(&label);
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        std::env::set_var("CRITERION_SAMPLE_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group
            .sample_size(10)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(42)));
    }
}
