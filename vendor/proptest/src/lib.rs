//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/`proptest!` subset this workspace's property
//! tests use: range and tuple strategies, `Just`, `prop_map` /
//! `prop_flat_map`, `prop::collection::vec`, `prop::bool::ANY`, and the
//! `prop_assert!` family. Cases are generated from a deterministic
//! per-test seed; there is no shrinking — a failing case reports its
//! case number so it can be replayed by re-running the test.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration, accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values of an associated type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and samples
    /// from the produced strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_inclusive_strategy!(usize, u64, u32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
}

/// Sizes accepted by [`prop::collection::vec`]: a fixed length or a
/// uniform range of lengths.
pub trait SizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy for `Vec`s of `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        /// See [`vec`].
        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// A fair coin flip.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The fair-coin strategy instance.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

/// Derives the per-test base seed from the test's module path and name.
pub fn test_seed(name: &str) -> u64 {
    // FNV-1a, stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// See [`prop_oneof!`]: a weighted union of strategies sharing a value
/// type; each sample picks one arm with probability proportional to
/// its weight, then samples it.
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u32,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Self { arms, total }
    }
}

/// Boxes one `prop_oneof!` arm (helper the macro expands to, so type
/// inference unifies the arm value types).
pub fn union_arm<S>(weight: u32, strategy: S) -> (u32, Box<dyn Strategy<Value = S::Value>>)
where
    S: Strategy + 'static,
{
    (weight, Box::new(strategy))
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, strategy) in &self.arms {
            if pick < *weight {
                return strategy.sample(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// Weighted (`3 => strategy`) or uniform (`strategy, strategy`) choice
/// between strategies with a common value type — the `prop_oneof!` of
/// the real crate, minus shrinking.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $($crate::union_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Builds the RNG for one case of one test.
pub fn case_rng(name: &str, case: u32) -> TestRng {
    StdRng::seed_from_u64(test_seed(name) ^ ((case as u64) << 32 | 0x5DEE_CE66))
}

/// Everything the property tests import.
pub mod prelude {
    pub use super::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts inside a property test; on failure the current case fails
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: `{:?}` != `{:?}`", a, b);
    }};
}

/// Declares property tests: each function's arguments are drawn from
/// the given strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr);
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let test_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::case_rng(test_name, case);
                    $(
                        let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("{test_name} failed at case {case}: {message}");
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_lengths_follow_size_range(
            v in prop::collection::vec(0.0f64..1.0, 3..7),
            w in prop::collection::vec(prop::bool::ANY, 5usize),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 5);
        }

        #[test]
        fn combinators_compose(d in (1usize..4).prop_flat_map(|n| {
            prop::collection::vec(0.0f64..1.0, n * 2).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(d.1.len(), d.0 * 2);
        }
    }
}
