//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the REDS workspace uses —
//! `Rng::{gen, gen_range, gen_bool}`, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `seq::SliceRandom::{shuffle, choose}` — backed by
//! a from-scratch xoshiro256++ generator (Blackman & Vigna 2019) seeded
//! through SplitMix64. The statistical quality is more than sufficient
//! for the Monte-Carlo style tests and experiments in this workspace;
//! streams are deterministic per seed but do *not* match upstream
//! `rand`'s ChaCha-based `StdRng` bit-for-bit.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: a stream of `u64` words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from their "standard" distribution
/// (`[0, 1)` for floats, the full range for integers, fair for bools).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly, the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased uniform integer in `[0, span)` via rejection sampling.
#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject the final partial block so every residue is equally likely.
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        loop {
            let unit = f64::sample_standard(rng);
            let v = self.start + unit * (self.end - self.start);
            // `unit * span` can round up to the excluded endpoint.
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample an empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + unit * (hi - lo)).min(hi)
    }
}

/// The user-facing random-value interface.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value in `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_are_in_range_and_well_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..100_000).map(|_| rng.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_covers_all_residues() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left order intact");
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }
}
